//! Adapting one-shot renaming objects to long-lived renaming.
//!
//! A [`Recycler`] layers a lock-free free list of released names over any
//! one-shot [`Renaming`] object. Leases are served from the free list when
//! possible; only when the list is empty — i.e. every name handed out so far
//! is still held — does the recycler fall back to a *fresh* acquisition from
//! the inner object, registered under a new virtual participant
//! ([`Renaming::acquire_as`]).
//!
//! # Tightness under churn
//!
//! Admission control bounds the number of simultaneously live leases by
//! `max_concurrent`. Because a fresh acquisition happens only when the free
//! list is empty, and every name absent from the list is attributable to a
//! distinct live lease, the inner object never sees more than
//! `max_concurrent` virtual participants. With a *strong adaptive* inner
//! object (names exactly `1..=k` for `k` participants — the compiled
//! [`RenamingNetwork`](crate::renaming_network::RenamingNetwork),
//! [`AdaptiveRenaming`](crate::adaptive::AdaptiveRenaming),
//! [`LinearProbeRenaming`](crate::linear_probe::LinearProbeRenaming)), every
//! name ever granted therefore stays in `1..=max_concurrent`, and moreover
//! within `1..=c` where `c` is the point contention at the grant — the
//! long-lived strong renaming guarantee checked by
//! [`assert_tight_lease_namespace`](crate::lease::assert_tight_lease_namespace).
//! Non-adaptive inner objects
//! ([`BitBatchingRenaming`](crate::bit_batching::BitBatchingRenaming)) keep
//! their own `1..=n` bound instead.
//!
//! # The free list
//!
//! Released names live in a [`FreeList`]: release sets the name's bit (one
//! `fetch_or`), lease claims the **lowest** set bit. Claiming the minimum
//! free name is what keeps recycling *adaptive* — see the
//! [`free_list`](crate::free_list) module documentation for the argument,
//! the flat-vs-hierarchical layouts, and the seqlock protocol behind
//! coherent misses. Both operations are lock-free and allocation-free, and a
//! double release is detected by the `fetch_or` (the duplicate is rejected
//! and counted in [`Recycler::leaked_names`]).
//!
//! For shard-local throughput at the price of a *loose* namespace bound, see
//! [`ShardedRecycler`](crate::sharded::ShardedRecycler), which spreads
//! leases over several independent recyclers.

use crate::error::RenamingError;
use crate::free_list::{FreeList, FreeListKind};
use crate::lease::{LongLivedRenaming, NameLease};
use crate::traits::Renaming;
use shmem::arena::{Arena, ArenaRef};
use shmem::process::ProcessCtx;
use shmem::steps::StepKind;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Headroom multiplier used to size the free list of a recycler over an
/// unbounded (adaptive) inner object, where no hard namespace bound exists.
/// Names above the sized bound are never produced in well-formed executions
/// (they would exceed the admission limit); if one appears it is leaked, not
/// lost.
const UNBOUNDED_FREELIST_HEADROOM: usize = 4;

/// Adapts a one-shot [`Renaming`] object into a [`LongLivedRenaming`] object
/// by recycling released names through a lock-free free list.
///
/// # Example
///
/// ```
/// use adaptive_renaming::lease::LongLivedRenaming;
/// use adaptive_renaming::recycler::Recycler;
/// use adaptive_renaming::renaming_network::RenamingNetwork;
/// use shmem::process::{ProcessCtx, ProcessId};
/// use sortnet::batcher::odd_even_network;
/// use std::sync::Arc;
///
/// // A compiled renaming network over 16 wires, recycled for at most 4
/// // concurrent holders.
/// let recycler = Arc::new(Recycler::new(
///     RenamingNetwork::<_>::new(odd_even_network(16)),
///     4,
/// ));
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
///
/// let a = Arc::clone(&recycler).lease(&mut ctx).unwrap();
/// let b = Arc::clone(&recycler).lease(&mut ctx).unwrap();
/// assert_eq!((a.name(), b.name()), (1, 2));
/// b.release(&mut ctx);
/// let c = Arc::clone(&recycler).lease(&mut ctx).unwrap();
/// assert_eq!(c.name(), 2, "the released name is recycled, not name 3");
/// assert_eq!(recycler.fresh_names(), 2);
/// assert_eq!(recycler.recycled_names(), 1);
/// ```
pub struct Recycler<R: Renaming> {
    inner: R,
    free: FreeList,
    /// The arena holding the header counters below (shared with `free`).
    /// The inner one-shot object stays process-local: fresh acquisitions
    /// are served by whichever process runs them, while the recycling fast
    /// path — the free list plus these counters — is fully shared.
    arena: Arc<Arena>,
    /// Next virtual participant index for fresh acquisitions. The header
    /// counters are pinned ([`ArenaRef`]) so the admission fast path never
    /// pays a per-access offset resolution.
    tickets: ArenaRef<AtomicUsize>,
    max_concurrent: usize,
    /// Admission reservations that led to a grant (or crashed trying);
    /// rejected reservations unreserve themselves, completed releases never
    /// decrement. The live-lease count is `granted − free.pushes()`: the
    /// free list's seqlock bump — which a release performs strictly after
    /// its name lands on the list — doubles as the admission release, saving
    /// an atomic read-modify-write per release and making it impossible for
    /// an in-flight release to stop counting as live too early.
    granted: ArenaRef<AtomicUsize>,
    peak: ArenaRef<AtomicUsize>,
    leaked: ArenaRef<AtomicUsize>,
}

impl<R: Renaming> Recycler<R> {
    /// Wraps `inner`, allowing at most `max_concurrent` simultaneously live
    /// leases, with the default (hierarchical) free-list layout.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrent` is zero or exceeds the inner object's
    /// capacity (a bounded object cannot serve more concurrent holders than
    /// it has names).
    pub fn new(inner: R, max_concurrent: usize) -> Self {
        Self::with_free_list(inner, max_concurrent, FreeListKind::default())
    }

    /// Like [`Recycler::new`], with an explicit free-list layout — the flat
    /// baseline or the two-level hierarchical bitmap (see
    /// [`FreeListKind`]).
    ///
    /// # Panics
    ///
    /// As [`Recycler::new`].
    pub fn with_free_list(inner: R, max_concurrent: usize, kind: FreeListKind) -> Self {
        let bound = Self::checked_bound(&inner, max_concurrent);
        let arena = Arena::heap(Self::footprint_for(bound, kind));
        Self::build(inner, max_concurrent, kind, bound, arena)
    }

    /// Like [`Recycler::with_free_list`], but places the free list and the
    /// header counters in the caller's `arena` — the cross-process
    /// constructor. The caller must reserve at least
    /// [`Recycler::footprint`] bytes for this recycler.
    pub fn with_free_list_in(
        inner: R,
        max_concurrent: usize,
        kind: FreeListKind,
        arena: &Arc<Arena>,
    ) -> Self {
        let bound = Self::checked_bound(&inner, max_concurrent);
        Self::build(inner, max_concurrent, kind, bound, Arc::clone(arena))
    }

    /// The number of arena bytes a recycler of this shape allocates: the
    /// free list plus four header counter lines.
    pub fn footprint(inner: &R, max_concurrent: usize, kind: FreeListKind) -> usize {
        Self::footprint_for(Self::checked_bound(inner, max_concurrent), kind)
    }

    fn footprint_for(bound: usize, kind: FreeListKind) -> usize {
        FreeList::footprint(bound, kind) + 4 * 64
    }

    fn checked_bound(inner: &R, max_concurrent: usize) -> usize {
        assert!(
            max_concurrent >= 1,
            "a recycler needs at least one concurrent lease"
        );
        match inner.capacity() {
            Some(capacity) => {
                assert!(
                    max_concurrent <= capacity,
                    "max_concurrent ({max_concurrent}) exceeds the inner \
                     object's capacity ({capacity})"
                );
                capacity
            }
            None => max_concurrent.saturating_mul(UNBOUNDED_FREELIST_HEADROOM),
        }
    }

    fn build(
        inner: R,
        max_concurrent: usize,
        kind: FreeListKind,
        bound: usize,
        arena: Arc<Arena>,
    ) -> Self {
        Recycler {
            inner,
            free: FreeList::with_kind_in(&arena, bound, kind),
            tickets: arena.alloc::<AtomicUsize>().pin(&arena),
            max_concurrent,
            granted: arena.alloc::<AtomicUsize>().pin(&arena),
            peak: arena.alloc::<AtomicUsize>().pin(&arena),
            leaked: arena.alloc::<AtomicUsize>().pin(&arena),
            arena,
        }
    }

    #[inline]
    fn tickets(&self) -> &AtomicUsize {
        &self.tickets
    }

    #[inline]
    fn granted(&self) -> &AtomicUsize {
        &self.granted
    }

    #[inline]
    fn peak(&self) -> &AtomicUsize {
        &self.peak
    }

    #[inline]
    fn leaked(&self) -> &AtomicUsize {
        &self.leaked
    }

    /// The arena holding the free list and the header counters (a private
    /// heap arena unless the recycler was built with
    /// [`Recycler::with_free_list_in`]).
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    /// The wrapped one-shot object.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The largest name this recycler can ever grant (the free list's
    /// bound): the inner object's capacity, or a fixed headroom multiple of
    /// `max_concurrent` for unbounded inner objects.
    pub fn name_bound(&self) -> usize {
        self.free.bound()
    }

    /// The free-list layout in use.
    pub fn free_list_kind(&self) -> FreeListKind {
        self.free.kind()
    }

    /// Names acquired fresh from the inner object so far.
    pub fn fresh_names(&self) -> usize {
        self.tickets().load(Ordering::Relaxed) // lint: relaxed-ok(diagnostic counter; no ordering dependency)
    }

    /// Leases served from the free list (recycled names) so far, derived as
    /// `releases − names currently free` (`O(capacity)`; diagnostics —
    /// momentarily stale while operations are in flight).
    pub fn recycled_names(&self) -> usize {
        self.free.pushes().saturating_sub(self.free.len())
    }

    /// Peak number of simultaneously live leases observed so far.
    pub fn peak_leases(&self) -> usize {
        self.peak().load(Ordering::Relaxed) // lint: relaxed-ok(diagnostic counter; no ordering dependency)
    }

    /// Names lost to the recycling discipline (double releases or releases
    /// of out-of-range names). Zero in well-formed executions.
    pub fn leaked_names(&self) -> usize {
        self.leaked().load(Ordering::Relaxed) // lint: relaxed-ok(diagnostic counter; no ordering dependency)
    }

    /// Names currently waiting on the free list (O(capacity); diagnostics).
    pub fn free_names(&self) -> usize {
        self.free.len()
    }

    /// Leases currently live (including in-flight releases and crashed
    /// attempts): total reservations granted minus completed releases.
    fn live_count(&self) -> usize {
        self.granted()
            .load(Ordering::SeqCst)
            .saturating_sub(self.free.pushes())
    }

    /// Grants one name without wrapping it in a [`NameLease`]: the
    /// admission + recycle/fresh core shared by [`LongLivedRenaming::lease`]
    /// and [`ShardedRecycler`](crate::sharded::ShardedRecycler). The caller
    /// owes the name one [`LongLivedRenaming::release_raw`].
    pub(crate) fn grant(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        let lease_timer = obs::start();
        // Admission control: bound the simultaneously live leases. The
        // reservation is taken before touching shared state and unreserved
        // on failure. Reading `pushes` *after* the reservation makes the
        // live estimate an overcount of the true outstanding leases (other
        // in-flight reservations are all counted, completed releases may
        // lag), so admission can spuriously reject under a race but can
        // never over-admit past `max_concurrent`.
        //
        // A rejection is retried with bounded backoff while releases keep
        // landing (the `pushes` seqlock moving between rejections): during
        // a crash-recovery sweep the capacity exists and is in the middle
        // of being pushed back, and failing fast would surface the sweep as
        // spurious `CapacityExceeded` to every concurrent acquirer. A
        // genuinely full recycler rejects with `pushes` unchanged and fails
        // after one retry, preserving the fail-fast contract at capacity.
        let mut backoff = crate::backoff::Backoff::new();
        let mut rejected_at = None;
        let live = loop {
            let reserved = self.granted().fetch_add(1, Ordering::SeqCst) + 1;
            let pushes = self.free.pushes();
            let live = reserved.saturating_sub(pushes);
            if live <= self.max_concurrent {
                break live;
            }
            self.granted().fetch_sub(1, Ordering::SeqCst);
            if backoff.is_completed() || rejected_at == Some(pushes) {
                return Err(RenamingError::CapacityExceeded {
                    capacity: self.max_concurrent,
                });
            }
            obs::count(obs::Metric::RecyclerAdmissionRetry);
            rejected_at = Some(pushes);
            backoff.snooze();
        };
        // lint: relaxed-ok(peak watermark is advisory; fetch_max below is the RMW)
        if live > self.peak().load(Ordering::Relaxed) {
            self.peak().fetch_max(live, Ordering::AcqRel); // lint: relaxed-ok(monotone watermark RMW; AcqRel keeps concurrent maxes ordered)
        }

        // Fast path: recycle a released name. The coherent pop only reports
        // a miss when the list was empty at a single instant, so a miss
        // proves every issued ticket still has a live owner.
        ctx.record(StepKind::ReadModifyWrite);
        if let Some(name) = self.free.pop_coherent() {
            obs::count(obs::Metric::RecyclerGrant);
            obs::count(obs::Metric::RecyclerRecycled);
            obs::finish(lease_timer, obs::Metric::GrantNs);
            return Ok(name);
        }
        match self.grant_fresh(ctx) {
            Ok(name) => {
                obs::count(obs::Metric::RecyclerGrant);
                obs::count(obs::Metric::RecyclerFresh);
                obs::finish(lease_timer, obs::Metric::GrantNs);
                Ok(name)
            }
            Err(error) => {
                self.granted().fetch_sub(1, Ordering::SeqCst);
                Err(error)
            }
        }
    }

    /// Slow path: every name handed out so far is still held — acquire a
    /// fresh one as a new virtual participant. The caller owns the
    /// admission reservation and unreserves it on failure.
    fn grant_fresh(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        let participant = self.tickets().fetch_add(1, Ordering::AcqRel); // lint: relaxed-ok(ticket RMW is the acquisition point for the participant slot)
        match self.inner.acquire_as(ctx, participant) {
            Ok(name) => Ok(name),
            Err(error) => {
                // Roll the ticket back so a failed inner acquisition neither
                // over-reports `fresh_names()` nor burns a virtual
                // participant index (which would inflate the inner object's
                // namespace on retry). The compare-exchange only restores
                // the counter when no later fresh acquisition raced past us;
                // in that rare case the index stays burned — acceptable,
                // since concurrent freshers are bounded by admission.
                let _ = self.tickets().compare_exchange(
                    participant + 1,
                    participant,
                    Ordering::AcqRel, // lint: relaxed-ok(CAS success publishes the rollback; failure retries with a fresh load)
                    Ordering::Relaxed,
                );
                Err(error)
            }
        }
    }

    /// Grants up to `count` names with a single amortized admission
    /// reservation, appending them to `names`. Returns how many were
    /// granted (possibly zero when the admission bound is reached) plus the
    /// inner fresh-path error that cut the batch short, if any — callers
    /// decide whether a partial batch is usable (shard sweeps) or must be
    /// rolled back with the true cause surfaced (all-or-nothing leases).
    /// Every granted name owes one [`LongLivedRenaming::release_raw`].
    pub(crate) fn grant_many(
        &self,
        ctx: &mut ProcessCtx,
        count: usize,
        names: &mut Vec<usize>,
    ) -> (usize, Option<RenamingError>) {
        if count == 0 {
            return (0, None);
        }
        // One fetch_add reserves the whole batch; excess reservations are
        // returned immediately, so transient over-reservation never rejects
        // others spuriously for longer than this window.
        let before = self.granted().fetch_add(count, Ordering::SeqCst);
        let live_before = before.saturating_sub(self.free.pushes());
        let admitted = self.max_concurrent.saturating_sub(live_before).min(count);
        if admitted < count {
            self.granted().fetch_sub(count - admitted, Ordering::SeqCst);
        }
        if admitted == 0 {
            return (0, None);
        }
        // lint: relaxed-ok(peak watermark is advisory; fetch_max below is the RMW)
        if live_before + admitted > self.peak().load(Ordering::Relaxed) {
            self.peak()
                .fetch_max(live_before + admitted, Ordering::AcqRel); // lint: relaxed-ok(monotone watermark RMW; AcqRel keeps concurrent maxes ordered)
        }
        let mut served = 0;
        while served < admitted {
            ctx.record(StepKind::ReadModifyWrite);
            let result = match self.free.pop_coherent() {
                Some(name) => Ok(name),
                None => self.grant_fresh(ctx),
            };
            match result {
                Ok(name) => {
                    names.push(name);
                    served += 1;
                }
                Err(error) => {
                    // Unreserve the failing slot plus the not-yet-attempted
                    // remainder of the batch.
                    self.granted()
                        .fetch_sub(admitted - served, Ordering::SeqCst);
                    return (served, Some(error));
                }
            }
        }
        (served, None)
    }
}

impl<R: Renaming + 'static> LongLivedRenaming for Recycler<R> {
    fn lease(self: Arc<Self>, ctx: &mut ProcessCtx) -> Result<NameLease, RenamingError> {
        let name = self.grant(ctx)?;
        Ok(NameLease::new(name, self))
    }

    fn lease_raw(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        self.grant(ctx)
    }

    /// Raw batch form with the amortized admission [`Recycler::lease_many`]
    /// builds on: one atomic reservation for the whole batch, all-or-nothing
    /// with the true shortfall cause surfaced.
    fn lease_many_raw(
        &self,
        ctx: &mut ProcessCtx,
        count: usize,
        out: &mut Vec<usize>,
    ) -> Result<(), RenamingError> {
        let start = out.len();
        let (served, stop) = self.grant_many(ctx, count, out);
        if served == count {
            return Ok(());
        }
        let partial = out.split_off(start);
        self.release_many_raw(&partial);
        Err(stop.unwrap_or(RenamingError::CapacityExceeded {
            capacity: self.max_concurrent,
        }))
    }

    /// Batch form with *amortized admission*: one atomic reservation admits
    /// the whole batch instead of one reservation per lease. All-or-nothing:
    /// on a shortfall the partial batch is released and the cause is
    /// returned — the inner object's error if its fresh path failed,
    /// [`RenamingError::CapacityExceeded`] otherwise.
    fn lease_many(
        self: Arc<Self>,
        ctx: &mut ProcessCtx,
        count: usize,
    ) -> Result<Vec<NameLease>, RenamingError> {
        let mut names = Vec::with_capacity(count);
        self.lease_many_raw(ctx, count, &mut names)?;
        Ok(names
            .into_iter()
            .map(|name| NameLease::new(name, Arc::clone(&self) as Arc<dyn LongLivedRenaming>))
            .collect())
    }

    fn release_raw(&self, name: usize) {
        obs::count(obs::Metric::RecyclerRelease);
        if !self.free.push(name) {
            // A rejected push is a double release (or an out-of-range name,
            // unreachable through `NameLease`). The admission slot was
            // already returned by the first release, so the duplicate must
            // not count as another release — count the misuse and otherwise
            // treat the call as a no-op. (A rejected push does not bump the
            // seqlock, so `live_leases` is untouched automatically.)
            self.leaked().fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(diagnostic counter; no ordering dependency)
        }
        // No further bookkeeping: the successful push's seqlock bump *is*
        // the admission release, and it lands strictly after the name does —
        // so in-flight releases keep counting as live, the invariant that
        // makes fresh names contention-bounded.
    }

    /// Batch release with one seqlock bump (hence one admission release
    /// operation) for the whole batch, after every name's bit has landed.
    fn release_many_raw(&self, names: &[usize]) {
        let pushed = self.free.push_many(names);
        if pushed < names.len() {
            self.leaked()
                .fetch_add(names.len() - pushed, Ordering::Relaxed); // lint: relaxed-ok(diagnostic counter; no ordering dependency)
        }
    }

    fn max_concurrent(&self) -> Option<usize> {
        Some(self.max_concurrent)
    }

    fn live_leases(&self) -> usize {
        self.live_count()
    }
}

impl<R: Renaming> fmt::Debug for Recycler<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recycler")
            .field("max_concurrent", &self.max_concurrent)
            .field("live", &self.live_count())
            .field("fresh_names", &self.fresh_names())
            .field("recycled_names", &self.recycled_names())
            .field("leaked_names", &self.leaked_names())
            .field("free_list", &self.free)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveRenaming;
    use crate::linear_probe::LinearProbeRenaming;
    use crate::renaming_network::RenamingNetwork;
    use parking_lot::Mutex;
    use shmem::adversary::ExecConfig;
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use sortnet::batcher::odd_even_network;
    use tas::ratrace::RatRaceTas;

    fn ctx(id: usize, seed: u64) -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(id), seed)
    }

    #[test]
    fn sequential_churn_recycles_instead_of_growing() {
        for kind in [FreeListKind::Flat, FreeListKind::Hierarchical] {
            let recycler = Arc::new(Recycler::with_free_list(
                RenamingNetwork::<_>::new(odd_even_network(32)),
                4,
                kind,
            ));
            assert_eq!(recycler.free_list_kind(), kind);
            let mut ctx = ctx(0, 9);
            for round in 0..20 {
                let lease = Arc::clone(&recycler).lease(&mut ctx).unwrap();
                assert_eq!(lease.name(), 1, "{kind:?}, round {round}");
                lease.release(&mut ctx);
            }
            assert_eq!(
                recycler.fresh_names(),
                1,
                "{kind:?}: one fresh name serves all churn"
            );
            assert_eq!(recycler.recycled_names(), 19, "{kind:?}");
            assert_eq!(recycler.leaked_names(), 0, "{kind:?}");
            assert_eq!(recycler.live_leases(), 0, "{kind:?}");
            assert!(ctx.stats().releases >= 19);
        }
    }

    #[test]
    fn names_stay_within_max_concurrent_under_staircase_churn() {
        let recycler = Arc::new(Recycler::new(AdaptiveRenaming::default(), 3));
        let mut ctx = ctx(7, 2);
        for _ in 0..5 {
            let a = Arc::clone(&recycler).lease(&mut ctx).unwrap();
            let b = Arc::clone(&recycler).lease(&mut ctx).unwrap();
            let c = Arc::clone(&recycler).lease(&mut ctx).unwrap();
            for lease in [&a, &b, &c] {
                assert!((1..=3).contains(&lease.name()), "name {}", lease.name());
            }
            drop(c);
            drop(b);
            drop(a);
        }
        assert!(recycler.fresh_names() <= 3);
        assert_eq!(recycler.peak_leases(), 3);
    }

    #[test]
    fn admission_control_rejects_excess_concurrency() {
        let recycler = Arc::new(Recycler::new(
            LinearProbeRenaming::with_slots((0..4).map(|_| RatRaceTas::new()).collect::<Vec<_>>()),
            2,
        ));
        let mut ctx = ctx(0, 0);
        let a = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        let _b = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        assert_eq!(
            Arc::clone(&recycler).lease(&mut ctx).unwrap_err(),
            RenamingError::CapacityExceeded { capacity: 2 }
        );
        drop(a);
        let c = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        assert_eq!(c.name(), 1, "releasing re-opens admission with recycling");
    }

    #[test]
    fn lease_many_amortizes_admission_and_is_all_or_nothing() {
        let recycler = Arc::new(Recycler::new(
            RenamingNetwork::<_>::new(odd_even_network(32)),
            4,
        ));
        let mut ctx = ctx(0, 3);
        let batch = Arc::clone(&recycler).lease_many(&mut ctx, 3).unwrap();
        let mut names: Vec<usize> = batch.iter().map(NameLease::name).collect();
        names.sort_unstable();
        assert_eq!(names, vec![1, 2, 3]);
        assert_eq!(recycler.live_leases(), 3);
        // Requesting past the admission bound releases the partial batch.
        assert_eq!(
            Arc::clone(&recycler).lease_many(&mut ctx, 2).unwrap_err(),
            RenamingError::CapacityExceeded { capacity: 4 }
        );
        assert_eq!(recycler.live_leases(), 3, "partial batch fully released");
        drop(batch);
        assert_eq!(recycler.live_leases(), 0);
        // After full release the batch recycles instead of growing.
        let again = Arc::clone(&recycler).lease_many(&mut ctx, 4).unwrap();
        assert_eq!(again.len(), 4);
        assert!(recycler.fresh_names() <= 4);
        assert_eq!(
            Arc::clone(&recycler).lease_many(&mut ctx, 0).unwrap().len(),
            0
        );
    }

    #[test]
    fn raw_batches_round_trip_with_one_seqlock_bump_per_batch() {
        let recycler = Arc::new(Recycler::new(
            RenamingNetwork::<_>::new(odd_even_network(32)),
            4,
        ));
        let mut ctx = ctx(0, 8);
        let mut names = Vec::new();
        recycler.lease_many_raw(&mut ctx, 4, &mut names).unwrap();
        names.sort_unstable();
        assert_eq!(names, vec![1, 2, 3, 4]);
        assert_eq!(recycler.live_leases(), 4);
        // All-or-nothing past the bound, with the buffer restored.
        let mut overflow = vec![99];
        assert_eq!(
            recycler
                .lease_many_raw(&mut ctx, 1, &mut overflow)
                .unwrap_err(),
            RenamingError::CapacityExceeded { capacity: 4 }
        );
        assert_eq!(overflow, vec![99], "the out buffer keeps prior contents");
        recycler.release_many_raw(&names);
        assert_eq!(recycler.live_leases(), 0);
        assert_eq!(recycler.free_names(), 4);
        // A second batch recycles the same names; a double batch release is
        // rejected name by name and counted.
        let mut again = Vec::new();
        recycler.lease_many_raw(&mut ctx, 4, &mut again).unwrap();
        assert!(recycler.fresh_names() <= 4);
        recycler.release_many_raw(&again);
        recycler.release_many_raw(&again);
        assert_eq!(recycler.leaked_names(), 4);
        assert_eq!(recycler.live_leases(), 0);
    }

    #[test]
    fn forget_detaches_the_name_and_release_raw_returns_it() {
        let recycler = Arc::new(Recycler::new(AdaptiveRenaming::default(), 2));
        let mut ctx = ctx(1, 4);
        let lease = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        let name = lease.forget();
        assert_eq!(recycler.live_leases(), 1, "a forgotten name stays live");
        recycler.release_raw(name);
        assert_eq!(recycler.live_leases(), 0);
        let again = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        assert_eq!(again.name(), name);
    }

    #[test]
    fn double_release_raw_is_rejected_and_counted() {
        let recycler = Arc::new(Recycler::new(AdaptiveRenaming::default(), 2));
        let mut ctx = ctx(0, 5);
        let name = Arc::clone(&recycler).lease(&mut ctx).unwrap().forget();
        let held = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        recycler.release_raw(name);
        assert_eq!(recycler.live_leases(), 1, "one lease is still held");
        recycler.release_raw(name); // misuse: the duplicate is leaked
        assert_eq!(recycler.leaked_names(), 1);
        assert_eq!(
            recycler.live_leases(),
            1,
            "a rejected release must not return an admission slot twice"
        );
        drop(held);
        assert_eq!(recycler.live_leases(), 0);
    }

    /// A one-shot object whose `acquire_as` fails a scripted number of times
    /// before succeeding, recording every participant index it is offered —
    /// the probe for the fresh-path ticket rollback.
    struct FlakyRenaming {
        failures_left: AtomicUsize,
        participants_seen: Mutex<Vec<usize>>,
    }

    impl FlakyRenaming {
        fn failing(times: usize) -> Self {
            FlakyRenaming {
                failures_left: AtomicUsize::new(times),
                participants_seen: Mutex::new(Vec::new()),
            }
        }
    }

    impl Renaming for FlakyRenaming {
        fn acquire(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
            self.acquire_as(ctx, 0)
        }

        fn acquire_as(
            &self,
            _ctx: &mut ProcessCtx,
            participant: usize,
        ) -> Result<usize, RenamingError> {
            self.participants_seen.lock().push(participant);
            let failing = self
                .failures_left
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| {
                    left.checked_sub(1)
                })
                .is_ok();
            if failing {
                Err(RenamingError::CapacityExceeded { capacity: 0 })
            } else {
                Ok(participant + 1)
            }
        }

        fn capacity(&self) -> Option<usize> {
            Some(64)
        }

        fn is_adaptive(&self) -> bool {
            true
        }
    }

    #[test]
    fn failed_fresh_acquisitions_roll_the_ticket_back() {
        // Regression test for the fresh-path ticket leak: a failing inner
        // renaming used to burn a virtual participant index per failure and
        // leave `fresh_names()` over-reporting, inflating the inner
        // namespace on retry.
        let recycler = Arc::new(Recycler::new(FlakyRenaming::failing(3), 4));
        let mut ctx = ctx(0, 1);
        for attempt in 0..3 {
            let error = Arc::clone(&recycler).lease(&mut ctx).unwrap_err();
            assert_eq!(error, RenamingError::CapacityExceeded { capacity: 0 });
            assert_eq!(
                recycler.fresh_names(),
                0,
                "attempt {attempt}: failed fresh acquisitions must not be counted"
            );
            assert_eq!(recycler.live_leases(), 0, "attempt {attempt}");
        }
        let lease = Arc::clone(&recycler).lease(&mut ctx).unwrap();
        assert_eq!(
            lease.name(),
            1,
            "the retry reuses participant 0, keeping the inner namespace tight"
        );
        assert_eq!(recycler.fresh_names(), 1);
        assert_eq!(
            *recycler.inner().participants_seen.lock(),
            vec![0, 0, 0, 0],
            "every attempt entered the inner object as participant 0"
        );
    }

    #[test]
    fn concurrent_churn_yields_unique_live_names_in_bound() {
        for seed in 0..4 {
            let recycler = Arc::new(Recycler::new(
                RenamingNetwork::<_>::new(odd_even_network(64)),
                8,
            ));
            let outcome = Executor::new(ExecConfig::new(seed)).run(8, {
                let recycler = Arc::clone(&recycler);
                move |ctx| {
                    let mut names = Vec::new();
                    for _ in 0..6 {
                        let lease = Arc::clone(&recycler).lease(ctx).unwrap();
                        names.push(lease.name());
                        lease.release(ctx);
                    }
                    names
                }
            });
            let names = outcome.flattened();
            assert_eq!(names.len(), 48, "seed {seed}");
            assert!(
                names.iter().all(|&name| (1..=8).contains(&name)),
                "seed {seed}: names must stay in 1..=max_concurrent, got {names:?}"
            );
            assert!(recycler.fresh_names() <= 8, "seed {seed}");
            assert_eq!(recycler.live_leases(), 0, "seed {seed}");
            assert_eq!(recycler.leaked_names(), 0, "seed {seed}");
        }
    }

    #[test]
    fn debug_reports_the_counters() {
        let recycler = Recycler::new(AdaptiveRenaming::default(), 2);
        let formatted = format!("{recycler:?}");
        assert!(formatted.contains("Recycler"));
        assert!(formatted.contains("max_concurrent"));
        assert_eq!(LongLivedRenaming::max_concurrent(&recycler), Some(2));
        assert_eq!(recycler.name_bound(), 2 * UNBOUNDED_FREELIST_HEADROOM);
    }

    #[test]
    #[should_panic(expected = "at least one concurrent lease")]
    fn zero_concurrency_is_rejected() {
        let _ = Recycler::new(AdaptiveRenaming::default(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the inner")]
    fn max_concurrent_above_capacity_is_rejected() {
        let _ = Recycler::new(
            LinearProbeRenaming::with_slots((0..2).map(|_| RatRaceTas::new()).collect::<Vec<_>>()),
            3,
        );
    }
}
