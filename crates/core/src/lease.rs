//! Long-lived renaming: RAII name leases and the lease-history checker.
//!
//! The paper's objects are one-shot: each participant calls `acquire` once
//! and the name is consumed forever. A production name server needs the
//! *long-lived* variant of the problem — acquire **and** release, with
//! released names recycled — which is the standard extension studied in the
//! long-lived renaming literature. This module provides the public surface:
//!
//! * [`LongLivedRenaming`] — the trait of objects that hand out names for a
//!   bounded duration. [`Recycler`](crate::recycler::Recycler) adapts any
//!   one-shot [`Renaming`](crate::traits::Renaming) object into one.
//! * [`NameLease`] — the RAII guard returned by
//!   [`LongLivedRenaming::lease`]. Dropping the guard returns the name;
//!   [`NameLease::release`] does the same with step accounting.
//! * [`LeaseRecord`] / [`assert_tight_lease_namespace`] — the correctness
//!   checker for lease-churn histories: at every instant live names must be
//!   distinct, and every granted name must be bounded by the contention at
//!   the moment of the grant (tightness against *concurrent holders*, not
//!   against the total number of acquisitions ever made).

use crate::error::RenamingError;
use shmem::process::ProcessCtx;
use shmem::steps::StepKind;
use std::fmt;
use std::sync::Arc;

/// A renaming object whose names can be returned and recycled.
///
/// Unlike the one-shot [`Renaming`](crate::traits::Renaming) trait, names
/// obtained through [`LongLivedRenaming::lease`] are held only for the
/// lifetime of the returned [`NameLease`]; releasing a lease makes its name
/// available to later leases. The guarantee under churn (for recyclers over
/// strong adaptive one-shot objects): at every instant the live names are
/// distinct, and every name is at most the number of leases concurrently in
/// progress when it was granted.
///
/// The trait is dyn-compatible: the builder returns
/// `Arc<dyn LongLivedRenaming>`, and [`LongLivedRenaming::lease`] takes the
/// `Arc` by value so the guard can keep its issuer alive. Call it as
/// `Arc::clone(&object).lease(ctx)`.
pub trait LongLivedRenaming: Send + Sync {
    /// Acquires a name wrapped in an RAII [`NameLease`].
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::CapacityExceeded`] when the configured
    /// maximum number of concurrent leases is reached, or any error of the
    /// underlying one-shot object's fresh-name path.
    fn lease(self: Arc<Self>, ctx: &mut ProcessCtx) -> Result<NameLease, RenamingError>;

    /// Acquires `count` names in one batch, all-or-nothing: on failure any
    /// partially acquired leases are released and the error is returned.
    ///
    /// The default implementation loops over [`LongLivedRenaming::lease`];
    /// implementations override it to amortize per-lease admission work —
    /// [`Recycler`](crate::recycler::Recycler) reserves the whole batch's
    /// admission slots with a single atomic operation, and
    /// [`ShardedRecycler`](crate::sharded::ShardedRecycler) fills the batch
    /// shard by shard starting at the caller's home shard.
    ///
    /// # Errors
    ///
    /// As [`LongLivedRenaming::lease`]; a batch larger than the remaining
    /// admission headroom fails with [`RenamingError::CapacityExceeded`].
    fn lease_many(
        self: Arc<Self>,
        ctx: &mut ProcessCtx,
        count: usize,
    ) -> Result<Vec<NameLease>, RenamingError> {
        let mut leases = Vec::with_capacity(count);
        for _ in 0..count {
            // A failure drops `leases`, releasing the partial batch.
            leases.push(Arc::clone(&self).lease(ctx)?);
        }
        Ok(leases)
    }

    /// Acquires a name **without** an RAII guard: the raw hot path
    /// underneath [`LongLivedRenaming::lease`].
    ///
    /// The caller owes the returned name exactly one
    /// [`LongLivedRenaming::release_raw`] (or
    /// [`LongLivedRenaming::release_with`]); nothing releases it
    /// automatically. Use this where guard overhead or ownership rules out
    /// RAII — names stored in tables or handed across an FFI boundary, and
    /// benchmarks that must not time two reference-count updates per cycle.
    /// Everywhere else, prefer [`LongLivedRenaming::lease`]: a leaked raw
    /// name permanently consumes an admission slot.
    ///
    /// # Errors
    ///
    /// As [`LongLivedRenaming::lease`].
    fn lease_raw(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError>;

    /// Acquires `count` names **without** guards, appending them to `out`:
    /// the raw analogue of [`LongLivedRenaming::lease_many`], all-or-nothing
    /// (on failure `out` is restored to its incoming length and everything
    /// partially acquired is released). The caller owes every appended name
    /// one release, ideally via [`LongLivedRenaming::release_many_raw`].
    ///
    /// The out-parameter lets hot paths reuse one buffer across batches.
    /// Implementations override the default (a [`LongLivedRenaming::lease_raw`]
    /// loop) to amortize admission work over the batch.
    ///
    /// # Errors
    ///
    /// As [`LongLivedRenaming::lease_many`].
    fn lease_many_raw(
        &self,
        ctx: &mut ProcessCtx,
        count: usize,
        out: &mut Vec<usize>,
    ) -> Result<(), RenamingError> {
        let start = out.len();
        for _ in 0..count {
            match self.lease_raw(ctx) {
                Ok(name) => out.push(name),
                Err(error) => {
                    while out.len() > start {
                        let name = out.pop().expect("length checked");
                        self.release_raw(name);
                    }
                    return Err(error);
                }
            }
        }
        Ok(())
    }

    /// Returns a previously leased name to the object **without** step
    /// accounting.
    ///
    /// Normally invoked by [`NameLease`]'s `Drop` implementation; call it
    /// directly only with a name obtained from [`NameLease::forget`] or
    /// [`LongLivedRenaming::lease_raw`], and at most once per lease —
    /// releasing a name twice corrupts the free list's uniqueness guarantee
    /// (implementations reject obvious double releases, but the contract is
    /// the caller's responsibility).
    fn release_raw(&self, name: usize);

    /// Returns a batch of previously leased names **without** step
    /// accounting: the raw analogue of dropping a [`LongLivedRenaming::lease_many`]
    /// batch. The default loops over [`LongLivedRenaming::release_raw`];
    /// implementations override it to amortize release-side bookkeeping
    /// (e.g. one seqlock bump for the whole batch). The per-name contract is
    /// that of [`LongLivedRenaming::release_raw`].
    fn release_many_raw(&self, names: &[usize]) {
        for &name in names {
            self.release_raw(name);
        }
    }

    /// Returns a previously leased name, recording one
    /// [`StepKind::Release`] step against `ctx`.
    fn release_with(&self, ctx: &mut ProcessCtx, name: usize) {
        self.release_raw(name);
        ctx.record(StepKind::Release);
    }

    /// The maximum number of leases that may be live simultaneously, or
    /// `None` if unbounded.
    fn max_concurrent(&self) -> Option<usize>;

    /// The number of leases currently live (including leases whose release
    /// is still in flight).
    fn live_leases(&self) -> usize;
}

/// An RAII guard over a leased name.
///
/// The guard holds its issuing [`LongLivedRenaming`] object alive and
/// returns the name when dropped. For step-accounted release, use
/// [`NameLease::release`]; to intentionally leak the name out of the
/// recycling discipline, use [`NameLease::forget`].
///
/// # Example
///
/// ```
/// use adaptive_renaming::lease::LongLivedRenaming;
/// use adaptive_renaming::recycler::Recycler;
/// use adaptive_renaming::traits::Renaming;
/// use shmem::process::{ProcessCtx, ProcessId};
/// use std::sync::Arc;
///
/// let object = <dyn Renaming>::builder()
///     .linear_probe()
///     .capacity(8)
///     .max_concurrent(4)
///     .build_long_lived()
///     .unwrap();
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 7);
///
/// let lease = Arc::clone(&object).lease(&mut ctx).unwrap();
/// assert_eq!(lease.name(), 1);
/// drop(lease); // the name goes back to the pool
///
/// let again = Arc::clone(&object).lease(&mut ctx).unwrap();
/// assert_eq!(again.name(), 1, "released names are recycled");
/// ```
#[must_use = "dropping a NameLease immediately releases the name"]
pub struct NameLease {
    name: usize,
    owner: Option<Arc<dyn LongLivedRenaming>>,
}

impl NameLease {
    /// Wraps a freshly granted `name` so that dropping the guard returns it
    /// to `owner`. Called by [`LongLivedRenaming`] implementations.
    pub fn new(name: usize, owner: Arc<dyn LongLivedRenaming>) -> Self {
        NameLease {
            name,
            owner: Some(owner),
        }
    }

    /// The leased name (1-based).
    pub fn name(&self) -> usize {
        self.name
    }

    /// Releases the name, recording one [`StepKind::Release`] step against
    /// `ctx`. Equivalent to dropping the guard, plus the step accounting.
    pub fn release(mut self, ctx: &mut ProcessCtx) {
        if let Some(owner) = self.owner.take() {
            owner.release_with(ctx, self.name);
        }
    }

    /// Detaches the name from the guard without releasing it: the name stays
    /// permanently allocated (it still counts against the issuer's
    /// concurrency limit) unless later handed to
    /// [`LongLivedRenaming::release_raw`].
    pub fn forget(mut self) -> usize {
        self.owner = None;
        self.name
    }
}

impl Drop for NameLease {
    fn drop(&mut self) {
        if let Some(owner) = self.owner.take() {
            owner.release_raw(self.name);
        }
    }
}

impl fmt::Debug for NameLease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NameLease")
            .field("name", &self.name)
            .field("released", &self.owner.is_none())
            .finish()
    }
}

impl PartialEq<usize> for NameLease {
    fn eq(&self, other: &usize) -> bool {
        self.name == *other
    }
}

/// One lease attempt in a recorded churn history, with logical timestamps
/// drawn from a shared monotone counter (e.g. an `AtomicU64` bumped at every
/// recorded event).
///
/// The four timestamps delimit two nested intervals:
///
/// * the **contention interval** `[requested_at, release_finished_at)` — the
///   span during which this attempt counts toward the object's point
///   contention (open-ended for crashed attempts, which may hold resources
///   forever);
/// * the **hold interval** `[granted_at, release_started_at)` — the span
///   during which the caller observably owned the name (used for the
///   uniqueness check; it is a subset of the true ownership span, so any
///   recorded overlap is a genuine violation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeaseRecord {
    /// The granted name, or `None` if the attempt failed or crashed before
    /// the grant.
    pub name: Option<usize>,
    /// Timestamp taken immediately before invoking `lease`.
    pub requested_at: u64,
    /// Timestamp taken immediately after `lease` returned a name.
    pub granted_at: Option<u64>,
    /// Timestamp taken immediately before initiating the release.
    pub release_started_at: Option<u64>,
    /// Timestamp taken immediately after the release returned.
    pub release_finished_at: Option<u64>,
}

/// Checks a lease-churn history for the long-lived strong renaming
/// guarantees:
///
/// 1. **Uniqueness at every instant** — no two hold intervals with the same
///    name overlap.
/// 2. **Tightness against concurrent holders** — every granted name is at
///    most the peak number of attempts simultaneously inside their
///    contention interval while the grant was in flight (between the
///    attempt's request and its grant). Crashed attempts (no release
///    timestamps) count as contenders forever, exactly as a crashed process
///    may forever hold the object's internal resources.
///
/// This is the lease-history analogue of
/// [`assert_tight_namespace`](crate::traits::assert_tight_namespace), which
/// compares against the *total* number of one-shot acquirers and therefore
/// rejects any history in which a name is ever reused.
///
/// Returns `Err` with a human-readable description of the first violation.
pub fn assert_tight_lease_namespace(records: &[LeaseRecord]) -> Result<(), String> {
    const INFINITY: u64 = u64::MAX;

    // --- 1. uniqueness: per name, hold intervals must not overlap. --------
    let mut holds: Vec<(usize, u64, u64)> = records
        .iter()
        .filter_map(|r| {
            let name = r.name?;
            let start = r.granted_at?;
            Some((name, start, r.release_started_at.unwrap_or(INFINITY)))
        })
        .collect();
    holds.sort_unstable();
    for pair in holds.windows(2) {
        let (name_a, _, end_a) = pair[0];
        let (name_b, start_b, _) = pair[1];
        if name_a == name_b && start_b < end_a {
            return Err(format!(
                "name {name_a} held by two leases simultaneously \
                 (second grant at t={start_b}, first release at t={end_a})"
            ));
        }
    }
    if let Some(&(name, ..)) = holds.first() {
        if name == 0 {
            return Err("name 0 granted (names are 1-based)".to_string());
        }
    }

    // --- 2. tightness: name ≤ peak contention during the grant window. ----
    // Sweep the contention deltas in timestamp order, remembering the active
    // count after every event so per-record windows can be answered offline.
    let mut deltas: Vec<(u64, i64)> = Vec::with_capacity(records.len() * 2);
    for r in records {
        deltas.push((r.requested_at, 1));
        if let Some(end) = r.release_finished_at {
            deltas.push((end, -1));
        }
    }
    deltas.sort_unstable();
    let mut active = 0i64;
    let timeline: Vec<(u64, i64)> = deltas
        .iter()
        .map(|&(t, d)| {
            active += d;
            (t, active)
        })
        .collect();

    let peak_between = |from: u64, to: u64| -> i64 {
        // Active count just before `from`, maxed with every level reached at
        // event times within [from, to].
        let start = timeline.partition_point(|&(t, _)| t < from);
        let before = if start == 0 { 0 } else { timeline[start - 1].1 };
        timeline[start..]
            .iter()
            .take_while(|&&(t, _)| t <= to)
            .map(|&(_, level)| level)
            .fold(before, i64::max)
    };

    for r in records {
        let (Some(name), Some(granted)) = (r.name, r.granted_at) else {
            continue;
        };
        let contention = peak_between(r.requested_at, granted);
        if (name as i64) > contention {
            return Err(format!(
                "name {name} granted at t={granted} exceeds the point \
                 contention {contention} of its grant window"
            ));
        }
    }
    Ok(())
}

/// Checks a lease-churn history against the **loose** sharded bound of
/// [`ShardedRecycler`](crate::sharded::ShardedRecycler): names are drawn
/// from `shards` disjoint ranges of `span` names each, and within each
/// shard's range the *localized* names (`((name - 1) % span) + 1`) must
/// satisfy the tight long-lived guarantee of
/// [`assert_tight_lease_namespace`] against that shard's own churn history.
///
/// Concretely:
///
/// 1. every granted name lies in `1..=shards × span`;
/// 2. per shard, localized hold intervals never overlap — which, because the
///    shard ranges partition the namespace, is exactly global uniqueness at
///    every instant;
/// 3. per shard, every localized name is at most the point contention of its
///    grant window within that shard — so with per-shard point contention at
///    most `p`, at most `shards × p` distinct names are ever in use (the
///    documented loose namespace bound), even though the largest such name
///    can be as high as `(shards - 1) × span + p`.
///
/// Attempts that never received a name (failures and crashes) cannot be
/// attributed to a shard from the record alone — under overflow stealing
/// they may have contended at several shards — so they are counted toward
/// every shard's contention. A checker must never report a violation for a
/// correct object, and a crashed attempt legitimately justifies a higher
/// name wherever it contended.
///
/// Returns `Err` with a human-readable description of the first violation.
pub fn assert_loose_lease_namespace(
    records: &[LeaseRecord],
    shards: usize,
    span: usize,
) -> Result<(), String> {
    if shards == 0 || span == 0 {
        return Err(format!(
            "a loose bound needs at least one shard and one name per shard \
             (got {shards} shards × {span})"
        ));
    }
    let mut per_shard: Vec<Vec<LeaseRecord>> = vec![Vec::new(); shards];
    let mut unattributed: Vec<LeaseRecord> = Vec::new();
    for record in records {
        match record.name {
            Some(0) => return Err("name 0 granted (names are 1-based)".to_string()),
            Some(name) => {
                if name > shards * span {
                    return Err(format!(
                        "name {name} exceeds the loose namespace bound {} \
                         (= {shards} shards × {span} names/shard)",
                        shards * span
                    ));
                }
                let mut localized = *record;
                localized.name = Some((name - 1) % span + 1);
                per_shard[(name - 1) / span].push(localized);
            }
            None => unattributed.push(*record),
        }
    }
    for (shard, mut group) in per_shard.into_iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        group.extend_from_slice(&unattributed);
        assert_tight_lease_namespace(&group).map_err(|violation| {
            format!("shard {shard} (names {}..={}) violates its tight bound on localized names: {violation}",
                    shard * span + 1, (shard + 1) * span)
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        name: usize,
        requested: u64,
        granted: u64,
        rel_start: Option<u64>,
        rel_end: Option<u64>,
    ) -> LeaseRecord {
        LeaseRecord {
            name: Some(name),
            requested_at: requested,
            granted_at: Some(granted),
            release_started_at: rel_start,
            release_finished_at: rel_end,
        }
    }

    #[test]
    fn sequential_reuse_of_one_name_is_accepted() {
        let records = [
            record(1, 0, 1, Some(2), Some(3)),
            record(1, 4, 5, Some(6), Some(7)),
            record(1, 8, 9, None, None), // still held at the end
        ];
        assert!(assert_tight_lease_namespace(&records).is_ok());
    }

    #[test]
    fn overlapping_holders_of_one_name_are_rejected() {
        let records = [
            record(1, 0, 1, Some(6), Some(7)),
            record(1, 2, 3, Some(4), Some(5)),
        ];
        let err = assert_tight_lease_namespace(&records).unwrap_err();
        assert!(err.contains("held by two leases"), "{err}");
    }

    #[test]
    fn names_above_the_point_contention_are_rejected() {
        // A single uncontended lease must get a name bounded by its own
        // contention of 1.
        let records = [record(2, 0, 1, Some(2), Some(3))];
        let err = assert_tight_lease_namespace(&records).unwrap_err();
        assert!(err.contains("exceeds the point contention"), "{err}");
    }

    #[test]
    fn concurrent_leases_may_use_higher_names() {
        // Two overlapping leases: names 1 and 2 are both legitimate.
        let records = [
            record(1, 0, 2, Some(8), Some(9)),
            record(2, 1, 3, Some(6), Some(7)),
        ];
        assert!(assert_tight_lease_namespace(&records).is_ok());
    }

    #[test]
    fn in_flight_releases_count_toward_contention() {
        // Lease A releases over [3, 6]; lease B requests at 4 and is granted
        // name 2 at 5 — legitimate, because A's release has not finished.
        let records = [
            record(1, 0, 1, Some(3), Some(6)),
            record(2, 4, 5, Some(7), Some(8)),
        ];
        assert!(assert_tight_lease_namespace(&records).is_ok());
    }

    #[test]
    fn crashed_attempts_hold_contention_forever() {
        // A crashed attempt (no grant, no release) keeps contention at 2, so
        // a later lease may be granted name 2.
        let crashed = LeaseRecord {
            name: None,
            requested_at: 0,
            ..Default::default()
        };
        let records = [crashed, record(2, 5, 6, Some(7), Some(8))];
        assert!(assert_tight_lease_namespace(&records).is_ok());
    }

    #[test]
    fn zero_names_are_rejected() {
        let records = [record(0, 0, 1, None, None)];
        assert!(assert_tight_lease_namespace(&records).is_err());
    }

    #[test]
    fn empty_histories_are_trivially_tight() {
        assert!(assert_tight_lease_namespace(&[]).is_ok());
    }

    #[test]
    fn loose_checker_accepts_shard_local_tight_histories() {
        // Two shards of span 4: a solo lease in shard 1 may hold global name
        // 5 (localized name 1) even though its global contention is 1 — the
        // relaxation sharding buys.
        let records = [
            record(1, 0, 1, Some(10), Some(11)),
            record(5, 2, 3, Some(8), Some(9)),
        ];
        assert!(assert_tight_lease_namespace(&records).is_err());
        assert!(assert_loose_lease_namespace(&records, 2, 4).is_ok());
    }

    #[test]
    fn loose_checker_rejects_untight_shards_and_out_of_range_names() {
        // Localized name 2 (global 6) under contention 1 inside shard 1.
        let untight = [record(6, 0, 1, Some(2), Some(3))];
        let err = assert_loose_lease_namespace(&untight, 2, 4).unwrap_err();
        assert!(err.contains("shard 1"), "{err}");
        assert!(err.contains("point contention"), "{err}");

        let out_of_range = [record(9, 0, 1, None, None)];
        let err = assert_loose_lease_namespace(&out_of_range, 2, 4).unwrap_err();
        assert!(err.contains("loose namespace bound 8"), "{err}");

        let zero = [record(0, 0, 1, None, None)];
        assert!(assert_loose_lease_namespace(&zero, 2, 4).is_err());
        assert!(assert_loose_lease_namespace(&[], 0, 4).is_err());
    }

    #[test]
    fn loose_checker_rejects_overlapping_holders_within_a_shard() {
        let records = [
            record(5, 0, 1, Some(6), Some(7)),
            record(5, 2, 3, Some(4), Some(5)),
        ];
        let err = assert_loose_lease_namespace(&records, 2, 4).unwrap_err();
        assert!(err.contains("held by two leases"), "{err}");
    }

    #[test]
    fn loose_checker_counts_unattributed_attempts_in_every_shard() {
        // A crashed attempt (no grant) may have contended at any shard, so
        // shard 1 may justify localized name 2 (global 6) with it.
        let crashed = LeaseRecord {
            name: None,
            requested_at: 0,
            ..Default::default()
        };
        let records = [crashed, record(6, 1, 2, Some(3), Some(4))];
        assert!(assert_loose_lease_namespace(&records, 2, 4).is_ok());
    }

    #[test]
    fn loose_mode_with_one_shard_degenerates_to_the_tight_check() {
        let ok = [record(1, 0, 1, Some(2), Some(3))];
        assert!(assert_loose_lease_namespace(&ok, 1, 8).is_ok());
        let untight = [record(2, 0, 1, Some(2), Some(3))];
        assert!(assert_loose_lease_namespace(&untight, 1, 8).is_err());
    }
}
