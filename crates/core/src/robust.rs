//! Crash-robust long-lived renaming: generation-stamped lease slots with a
//! liveness sweep.
//!
//! The recycling layers of this crate ([`Recycler`](crate::recycler::Recycler)
//! and friends) assume every granted name is eventually released by its
//! holder. Across OS processes over a shared-memory
//! [`shmem::arena::Arena`] that assumption fails: a process that
//! crashes mid-lease takes its names with it, permanently shrinking the
//! namespace. [`RobustLeaseTable`] closes that hole with the classical
//! slot-per-name lease protocol:
//!
//! * Name `n` is represented by one 64-bit slot word packing an **owner**
//!   (32 bits, an OS pid in cross-process deployments), a **generation**
//!   (31 bits, bumped once per grant) and a **held** flag.
//! * `acquire` scans the slots from name 1 upward and claims the first free
//!   one with a single CAS `FREE(g) → HELD(g+1, owner)`.
//! * `release` performs the single CAS `HELD(g, owner) → FREE(g)`.
//! * `sweep` re-reads every slot and performs the *same* CAS on slots whose
//!   owner a liveness predicate declares dead.
//!
//! Because release and sweep compare against the exact word they observed,
//! the `HELD(g) → FREE(g)` transition of every grant happens **exactly
//! once**, no matter how a tardy releaser races a sweeper that presumed it
//! dead — the losing CAS fails harmlessly, and a re-grant bumps the
//! generation so stale CASes can never resurrect an old lease. That race is
//! exhaustively model-checked in the `mcheck` crate's `robust_sweep_2p`
//! scenario.
//!
//! **Namespace tightness.** `acquire` claims the lowest free slot, so a
//! process granted name `m` observed slots `1..m` occupied during its
//! winning scan: under point contention `k` the names stay in `1..=k` up to
//! the transient reuse races every scan-based long-lived object has (the
//! same loose bound as [`ShardedRecycler`](crate::sharded::ShardedRecycler),
//! tight in the sequential and quiescent cases exercised by the tests).
//!
//! **ABA.** A generation wraps after `2³¹` grants of the same name; a CAS
//! delayed across a full wrap of one slot could misfire. At one grant per
//! microsecond that is a half-hour-long stall on one slot — accepted, like
//! every bounded-tag scheme.
//!
//! All shared state lives in an [`Arena`], one cache line per slot, so the
//! table works unchanged over the process-private heap backend (tests,
//! model checking) and the `MAP_SHARED` mmap backend (the fork-based crash
//! test in `tests/crash_reclaim.rs`).

use crate::error::RenamingError;
use crate::lease::{LongLivedRenaming, NameLease};
use shmem::arena::Arena;
use shmem::process::{ProcessCtx, ProcessId};
use shmem::register::{AtomicU64Register, AtomicUsizeRegister};
use std::fmt;
use std::sync::Arc;

/// Number of low bits holding the owner tag.
const OWNER_BITS: u32 = 32;
/// Mask extracting the owner tag.
const OWNER_MASK: u64 = (1 << OWNER_BITS) - 1;
/// Bit position of the generation field.
const GEN_SHIFT: u32 = OWNER_BITS;
/// Width of the generation field (bit 63 is the held flag).
const GEN_BITS: u32 = 31;
/// Mask for a generation value (applied before shifting).
const GEN_MASK: u64 = (1 << GEN_BITS) - 1;
/// The held flag: set while the slot's name is leased out.
const HELD_BIT: u64 = 1 << 63;

/// Packs a free slot word carrying the given generation.
fn pack_free(generation: u64) -> u64 {
    (generation & GEN_MASK) << GEN_SHIFT
}

/// Packs a held slot word carrying the given generation and owner.
fn pack_held(generation: u64, owner: u32) -> u64 {
    HELD_BIT | ((generation & GEN_MASK) << GEN_SHIFT) | owner as u64
}

/// Whether the slot word is currently held.
fn is_held(word: u64) -> bool {
    word & HELD_BIT != 0
}

/// The generation stamped in the slot word.
fn generation(word: u64) -> u64 {
    (word >> GEN_SHIFT) & GEN_MASK
}

/// The owner tag stamped in the slot word (meaningful while held).
fn owner(word: u64) -> u32 {
    (word & OWNER_MASK) as u32
}

/// The successor generation, wrapping within the 31-bit field.
fn next_generation(generation: u64) -> u64 {
    generation.wrapping_add(1) & GEN_MASK
}

/// A crash-robust lease table over arena-resident slot words.
///
/// # Example
///
/// ```
/// use adaptive_renaming::robust::RobustLeaseTable;
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let table = RobustLeaseTable::with_capacity(4);
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
/// let name = table.acquire(&mut ctx, 71).unwrap();
/// assert_eq!(name, 1);
/// assert_eq!(table.holder(name), Some(71));
/// // The owner crashes; a sweep with a liveness predicate reclaims it.
/// assert_eq!(table.sweep(&mut ctx, |owner| owner == 71), 1);
/// assert_eq!(table.holder(name), None);
/// ```
pub struct RobustLeaseTable {
    arena: Arc<Arena>,
    /// Slot `i` governs name `i + 1`; each register word is on its own
    /// arena cache line.
    slots: Vec<AtomicU64Register>,
    /// Count of completed `HELD → FREE` transitions (by releasers *or*
    /// sweepers). Doubles as the seqlock stamp that keeps exhaustion
    /// reports coherent: an acquire whose scan found nothing re-checks this
    /// counter and rescans if a release landed mid-scan.
    releases: AtomicUsizeRegister,
    capacity: usize,
}

impl RobustLeaseTable {
    /// Creates a table of `capacity` names over a fresh process-private
    /// arena sized exactly [`RobustLeaseTable::footprint`] bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_in(&Arena::heap(Self::footprint(capacity)), capacity)
    }

    /// Creates a table of `capacity` names whose slots live in the caller's
    /// `arena` — the cross-process constructor. Allocates
    /// [`RobustLeaseTable::footprint`] arena bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the arena runs out of space.
    pub fn with_capacity_in(arena: &Arc<Arena>, capacity: usize) -> Self {
        assert!(capacity > 0, "a lease table needs at least one name");
        let slots = (0..capacity)
            .map(|_| AtomicU64Register::new_in(arena, pack_free(0)))
            .collect();
        RobustLeaseTable {
            arena: Arc::clone(arena),
            slots,
            releases: AtomicUsizeRegister::new_in(arena, 0),
            capacity,
        }
    }

    /// The number of arena bytes the table allocates: one 64-byte line per
    /// slot plus one for the release stamp.
    pub fn footprint(capacity: usize) -> usize {
        capacity * 64 + 64
    }

    /// The arena holding the table's shared state.
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    /// The number of names the table governs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquires the lowest free name for `owner`, stamping the slot with a
    /// fresh generation. In cross-process deployments the owner should be
    /// the caller's OS pid ([`shmem::arena::os_pid`]) so
    /// [`RobustLeaseTable::sweep_dead_processes`] can reclaim after a crash.
    ///
    /// Costs one read per scanned slot plus one CAS per claim attempt
    /// (`O(capacity)` reads per scan; a scan repeats only when a concurrent
    /// release or grant moved the table under it).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::CapacityExceeded`] when every slot is held —
    /// coherently: the failing scan is revalidated against the release
    /// stamp, so a release that landed mid-scan triggers a rescan instead of
    /// a spurious failure.
    pub fn acquire(&self, ctx: &mut ProcessCtx, owner_tag: u32) -> Result<usize, RenamingError> {
        let acquire_timer = obs::start();
        loop {
            let stamp = self.releases.read(ctx);
            let mut progress = false;
            for (index, slot) in self.slots.iter().enumerate() {
                let mut word = slot.read(ctx);
                while !is_held(word) {
                    let claimed = pack_held(next_generation(generation(word)), owner_tag);
                    match slot.compare_and_swap(ctx, word, claimed) {
                        Ok(_) => {
                            obs::count(obs::Metric::RobustAcquire);
                            obs::finish(acquire_timer, obs::Metric::RobustAcquireNs);
                            obs::event(
                                obs::EventKind::LeaseGranted,
                                (index + 1) as u64,
                                owner_tag as u64,
                            );
                            return Ok(index + 1);
                        }
                        Err(actual) => {
                            obs::count(obs::Metric::RobustCasRetry);
                            // Lost the race for this slot; it may have been
                            // re-freed with a newer generation, so re-read
                            // rather than skipping ahead (skipping would
                            // loosen the lowest-free-name discipline).
                            word = actual;
                            progress = true;
                        }
                    }
                }
            }
            // Every slot was held at its read point. Report exhaustion only
            // if no release landed while we scanned; otherwise the miss may
            // be incoherent — rescan.
            if !progress && self.releases.read(ctx) == stamp {
                return Err(RenamingError::CapacityExceeded {
                    capacity: self.capacity,
                });
            }
        }
    }

    /// Releases a held name: the single CAS `HELD(g, owner) → FREE(g)`.
    /// Returns whether **this call** performed the transition — `false`
    /// means a sweeper (or an erroneous double release) got there first, in
    /// which case the call changes nothing; the transition still happened
    /// exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `name` is outside `1..=capacity`.
    pub fn release(&self, ctx: &mut ProcessCtx, name: usize) -> bool {
        let slot = self.slot(name);
        let word = slot.read(ctx);
        if !is_held(word) {
            return false;
        }
        if slot
            .compare_and_swap(ctx, word, pack_free(generation(word)))
            .is_ok()
        {
            self.releases.fetch_add(ctx, 1);
            obs::count(obs::Metric::RobustRelease);
            obs::event(obs::EventKind::LeaseReleased, name as u64, 0);
            true
        } else {
            obs::count(obs::Metric::RobustCasRetry);
            false
        }
    }

    /// Reclaims the names of dead owners: for every held slot whose owner
    /// `is_dead` declares gone, performs the same `HELD(g) → FREE(g)` CAS a
    /// release would, so a presumed-dead owner racing its own release
    /// resolves to exactly one transition. Returns the number of names
    /// reclaimed by this call.
    ///
    /// Correctness of the *namespace* (no two live holders of one name)
    /// relies on the predicate never declaring a live owner dead; the
    /// exactly-once transition holds regardless.
    pub fn sweep(&self, ctx: &mut ProcessCtx, mut is_dead: impl FnMut(u32) -> bool) -> usize {
        let mut reclaimed = 0;
        for (index, slot) in self.slots.iter().enumerate() {
            let word = slot.read(ctx);
            if is_held(word)
                && is_dead(owner(word))
                && slot
                    .compare_and_swap(ctx, word, pack_free(generation(word)))
                    .is_ok()
            {
                self.releases.fetch_add(ctx, 1);
                reclaimed += 1;
                obs::count(obs::Metric::RobustSwept);
                obs::event(
                    obs::EventKind::SweepReclaimed,
                    (index + 1) as u64,
                    owner(word) as u64,
                );
            }
        }
        reclaimed
    }

    /// Sweeps with the operating system as the liveness oracle: a held
    /// slot's owner tag is interpreted as an OS pid and probed with
    /// [`shmem::arena::os_process_alive`]. The sweep every surviving
    /// process runs after a peer crashes mid-lease over a `MAP_SHARED`
    /// arena (`tests/crash_reclaim.rs`).
    ///
    /// As a postmortem hook, every distinct dead pid whose name this sweep
    /// reclaims is reported to [`obs::postmortem::notify_dead`]: if the
    /// sweeping process has a [`obs::FlightRecorder`] installed and the dead
    /// process had attached one of its rings, the dead process's last
    /// recorded events are dumped for inspection.
    #[cfg(all(unix, not(miri)))]
    pub fn sweep_dead_processes(&self, ctx: &mut ProcessCtx) -> usize {
        let mut dead_pids: Vec<u32> = Vec::new();
        let reclaimed = self.sweep(ctx, |pid| {
            let dead = !shmem::arena::os_process_alive(pid);
            if dead && !dead_pids.contains(&pid) {
                dead_pids.push(pid);
            }
            dead
        });
        for pid in dead_pids {
            obs::postmortem::notify_dead(pid);
        }
        reclaimed
    }

    /// The owner of a held name, or `None` if the name is free
    /// (harness/test inspection only, never from algorithm code).
    pub fn holder(&self, name: usize) -> Option<u32> {
        let word = self.slot(name).peek();
        is_held(word).then(|| owner(word))
    }

    /// The generation stamped on a name's slot (harness/test inspection).
    pub fn generation_of(&self, name: usize) -> u64 {
        generation(self.slot(name).peek())
    }

    /// The number of completed `HELD → FREE` transitions, by releasers and
    /// sweepers combined (harness/test inspection). Exactly-once means this
    /// equals the number of completed grants at any quiescent point.
    pub fn transitions(&self) -> usize {
        self.releases.peek()
    }

    fn slot(&self, name: usize) -> &AtomicU64Register {
        assert!(
            (1..=self.capacity).contains(&name),
            "name {name} outside the table's 1..={} namespace",
            self.capacity
        );
        &self.slots[name - 1]
    }
}

impl LongLivedRenaming for RobustLeaseTable {
    fn lease(self: Arc<Self>, ctx: &mut ProcessCtx) -> Result<NameLease, RenamingError> {
        let name = self.lease_raw(ctx)?;
        Ok(NameLease::new(name, self))
    }

    /// The trait path stamps ownership with the simulated process identity
    /// (`ctx.id() + 1`, kept nonzero); cross-process callers use
    /// [`RobustLeaseTable::acquire`] directly with their OS pid.
    fn lease_raw(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        let owner_tag = (ctx.id().as_u64() as u32).wrapping_add(1);
        self.acquire(ctx, owner_tag)
    }

    fn release_raw(&self, name: usize) {
        // The raw path has no caller context to charge; release through an
        // ephemeral one (step accounting lands nowhere, exactly like the
        // other recyclers' unaccounted release paths).
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        self.release(&mut ctx, name);
    }

    fn max_concurrent(&self) -> Option<usize> {
        Some(self.capacity)
    }

    fn live_leases(&self) -> usize {
        self.slots
            .iter()
            .filter(|slot| is_held(slot.peek()))
            .count()
    }
}

impl fmt::Debug for RobustLeaseTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RobustLeaseTable")
            .field("capacity", &self.capacity)
            .field("live", &self.live_leases())
            .field("transitions", &self.transitions())
            .field("backend", &self.arena.backend())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(id: usize) -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(id), 17)
    }

    #[test]
    fn slot_words_pack_and_unpack() {
        for (g, o) in [(0u64, 0u32), (1, 71), (GEN_MASK, u32::MAX)] {
            let free = pack_free(g);
            assert!(!is_held(free));
            assert_eq!(generation(free), g);
            let held = pack_held(g, o);
            assert!(is_held(held));
            assert_eq!(generation(held), g);
            assert_eq!(owner(held), o);
        }
        assert_eq!(next_generation(GEN_MASK), 0, "generations wrap in-field");
        assert_eq!(
            pack_free(GEN_MASK) & HELD_BIT,
            0,
            "gen never leaks into the flag"
        );
    }

    #[test]
    fn acquire_grants_lowest_free_names_and_bumps_generations() {
        let table = RobustLeaseTable::with_capacity(3);
        let mut ctx = ctx(0);
        assert_eq!(table.acquire(&mut ctx, 7).unwrap(), 1);
        assert_eq!(table.acquire(&mut ctx, 7).unwrap(), 2);
        assert_eq!(table.holder(1), Some(7));
        assert_eq!(table.generation_of(1), 1);
        assert!(table.release(&mut ctx, 1));
        assert_eq!(table.holder(1), None);
        // The freed minimum is reused, with a bumped generation.
        assert_eq!(table.acquire(&mut ctx, 9).unwrap(), 1);
        assert_eq!(table.generation_of(1), 2);
        assert_eq!(table.holder(1), Some(9));
    }

    #[test]
    fn exhaustion_is_reported_and_recovers() {
        let table = RobustLeaseTable::with_capacity(2);
        let mut ctx = ctx(0);
        table.acquire(&mut ctx, 1).unwrap();
        table.acquire(&mut ctx, 1).unwrap();
        assert!(matches!(
            table.acquire(&mut ctx, 1),
            Err(RenamingError::CapacityExceeded { capacity: 2 })
        ));
        assert!(table.release(&mut ctx, 2));
        assert_eq!(table.acquire(&mut ctx, 1).unwrap(), 2);
    }

    #[test]
    fn release_is_exactly_once() {
        let table = RobustLeaseTable::with_capacity(2);
        let mut ctx = ctx(0);
        let name = table.acquire(&mut ctx, 3).unwrap();
        assert!(table.release(&mut ctx, name));
        assert!(!table.release(&mut ctx, name), "double release is a no-op");
        assert_eq!(table.transitions(), 1);
    }

    #[test]
    fn sweep_reclaims_dead_owners_only() {
        let table = RobustLeaseTable::with_capacity(4);
        let mut ctx = ctx(0);
        let dead = table.acquire(&mut ctx, 100).unwrap();
        let live = table.acquire(&mut ctx, 200).unwrap();
        assert_eq!(table.sweep(&mut ctx, |o| o == 100), 1);
        assert_eq!(table.holder(dead), None);
        assert_eq!(table.holder(live), Some(200));
        // The reclaimed minimum is immediately grantable again.
        assert_eq!(table.acquire(&mut ctx, 300).unwrap(), dead);
        // A second sweep for the same owner finds nothing.
        assert_eq!(table.sweep(&mut ctx, |o| o == 100), 0);
        assert_eq!(table.transitions(), 1);
    }

    #[test]
    fn tardy_release_after_a_sweep_cannot_free_the_regrant() {
        // The ABA guard: sweep frees HELD(g), a new grant takes the slot at
        // g+1; the tardy owner's release must fail against the regrant.
        let table = RobustLeaseTable::with_capacity(1);
        let mut ctx = ctx(0);
        let name = table.acquire(&mut ctx, 1).unwrap();
        assert_eq!(table.sweep(&mut ctx, |_| true), 1);
        assert_eq!(table.acquire(&mut ctx, 2).unwrap(), name);
        // A release targeting the regrant *would* free it (release checks
        // the held flag, not the caller's identity) — but the slot the
        // tardy releaser observed carried generation 1, and a CAS against
        // that stale word fails. Simulate it at the packing level:
        assert_ne!(
            pack_held(1, 1),
            table.slot(name).peek(),
            "the regrant's word differs, so the stale CAS cannot apply"
        );
        assert_eq!(table.generation_of(name), 2);
    }

    #[test]
    fn arena_backed_table_has_an_exact_footprint() {
        let arena = Arena::heap(RobustLeaseTable::footprint(8));
        let table = RobustLeaseTable::with_capacity_in(&arena, 8);
        assert_eq!(arena.remaining(), 0, "footprint is exact");
        let mut ctx = ctx(0);
        assert_eq!(table.acquire(&mut ctx, 5).unwrap(), 1);
        assert_eq!(table.live_leases(), 1);
    }

    #[test]
    fn the_long_lived_trait_surface_works() {
        let table: Arc<dyn LongLivedRenaming> = Arc::new(RobustLeaseTable::with_capacity(4));
        assert_eq!(table.max_concurrent(), Some(4));
        let mut ctx = ctx(6);
        let lease = Arc::clone(&table).lease(&mut ctx).unwrap();
        assert_eq!(lease.name(), 1);
        assert_eq!(table.live_leases(), 1);
        drop(lease);
        assert_eq!(table.live_leases(), 0);
        let raw = table.lease_raw(&mut ctx).unwrap();
        table.release_raw(raw);
        assert_eq!(table.live_leases(), 0);
    }

    #[test]
    fn concurrent_churn_with_a_lying_sweeper_transitions_exactly_once() {
        // Threads churn acquire/release while a sweeper declares everyone
        // dead: every grant's HELD → FREE transition must happen exactly
        // once no matter who performs it.
        let threads = 4usize;
        let cycles = if cfg!(miri) { 10 } else { 300 };
        let table = Arc::new(RobustLeaseTable::with_capacity(threads));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sweeper = {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ctx = ctx(99);
                let mut swept = 0usize;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    swept += table.sweep(&mut ctx, |_| true);
                }
                swept
            })
        };
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || {
                    let mut ctx = ctx(t);
                    let mut granted = 0usize;
                    for _ in 0..cycles {
                        if let Ok(name) = table.acquire(&mut ctx, t as u32 + 1) {
                            granted += 1;
                            table.release(&mut ctx, name);
                        }
                    }
                    granted
                })
            })
            .collect();
        let granted: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let swept = sweeper.join().unwrap();
        // Quiescent now: every grant was freed by exactly one transition.
        assert_eq!(table.live_leases(), 0);
        assert_eq!(table.transitions(), granted);
        assert!(swept <= granted);
    }
}
