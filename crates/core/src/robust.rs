//! Crash-robust long-lived renaming: generation-stamped lease slots with a
//! liveness sweep.
//!
//! The recycling layers of this crate ([`Recycler`](crate::recycler::Recycler)
//! and friends) assume every granted name is eventually released by its
//! holder. Across OS processes over a shared-memory
//! [`shmem::arena::Arena`] that assumption fails: a process that
//! crashes mid-lease takes its names with it, permanently shrinking the
//! namespace. [`RobustLeaseTable`] closes that hole with the classical
//! slot-per-name lease protocol:
//!
//! * Name `n` is represented by one 64-bit slot word packing an **owner**
//!   (32 bits, an OS pid in cross-process deployments), a **generation**
//!   (31 bits, bumped once per grant) and a **held** flag.
//! * `acquire` scans the slots from name 1 upward and claims the first free
//!   one with a single CAS `FREE(g) → HELD(g+1, owner)`.
//! * `release` performs the single CAS `HELD(g, owner) → FREE(g)`.
//! * `sweep` re-reads every slot and performs the *same* CAS on slots whose
//!   owner a liveness predicate declares dead.
//!
//! Because release and sweep compare against the exact word they observed,
//! the `HELD(g) → FREE(g)` transition of every grant happens **exactly
//! once**, no matter how a tardy releaser races a sweeper that presumed it
//! dead — the losing CAS fails harmlessly, and a re-grant bumps the
//! generation so stale CASes can never resurrect an old lease. That race is
//! exhaustively model-checked in the `mcheck` crate's `robust_sweep_2p`
//! scenario.
//!
//! **Namespace tightness.** `acquire` claims the lowest free slot, so a
//! process granted name `m` observed slots `1..m` occupied during its
//! winning scan: under point contention `k` the names stay in `1..=k` up to
//! the transient reuse races every scan-based long-lived object has (the
//! same loose bound as [`ShardedRecycler`](crate::sharded::ShardedRecycler),
//! tight in the sequential and quiescent cases exercised by the tests).
//!
//! **ABA.** A generation wraps after `2³¹` grants of the same name; a CAS
//! delayed across a full wrap of one slot could misfire. At one grant per
//! microsecond that is a half-hour-long stall on one slot — accepted, like
//! every bounded-tag scheme.
//!
//! **Pid reuse and registrations.** Probing a pid with `kill(pid, 0)`
//! proves *a* process with that pid is alive — not that it is *our* owner:
//! the OS recycles pids, so a sweep keyed on raw pids can mistake a
//! stranger for a live leaseholder and leak the name forever. The table
//! therefore carries a small arena-resident **process registry**: a
//! process calls [`RobustLeaseTable::register_process`] once at attach,
//! receives a [`Registration`] whose [`Registration::tag`] packs its
//! registry slot and a start **generation**, and stamps that tag (not the
//! bare pid) into its leases. [`RobustLeaseTable::sweep_dead_processes`]
//! resolves a tag back through the registry: a generation mismatch means
//! the slot was re-registered (the original owner is gone no matter what
//! the pid now names), and only a matching registration's pid is probed
//! against the OS. Tags below `2^24` never collide with registration tags
//! and are treated as in-process (never provably dead) by the OS sweep.
//!
//! **Restart recovery.** Over a file-backed arena
//! ([`shmem::arena::Arena::file_attach`]) a whole fleet can die and a
//! fresh process attach later. [`crate::recovery::recover`] arbitrates via
//! the table's recovery-epoch word (one winner per epoch), raises the
//! **admission gate** so concurrent acquirers back off instead of
//! reporting spurious exhaustion ([`crate::backoff::Backoff`]), sweeps
//! dead owners, and moves torn slots (held with owner tag `0`) onto the
//! **quarantine** bitmap, drained by the next sweep.
//!
//! All shared state lives in an [`Arena`], one cache line per slot, so the
//! table works unchanged over the process-private heap backend (tests,
//! model checking) and the `MAP_SHARED` mmap backend (the fork-based crash
//! test in `tests/crash_reclaim.rs`).

use crate::backoff::Backoff;
use crate::error::RenamingError;
use crate::lease::{LongLivedRenaming, NameLease};
use shmem::arena::{Arena, ArenaSliceRef};
use shmem::process::{ProcessCtx, ProcessId};
use shmem::register::{AtomicU64Register, AtomicUsizeRegister};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of low bits holding the owner tag.
const OWNER_BITS: u32 = 32;
/// Mask extracting the owner tag.
const OWNER_MASK: u64 = (1 << OWNER_BITS) - 1;
/// Bit position of the generation field.
const GEN_SHIFT: u32 = OWNER_BITS;
/// Width of the generation field (bit 63 is the held flag).
const GEN_BITS: u32 = 31;
/// Mask for a generation value (applied before shifting).
const GEN_MASK: u64 = (1 << GEN_BITS) - 1;
/// The held flag: set while the slot's name is leased out.
const HELD_BIT: u64 = 1 << 63;

/// Packs a free slot word carrying the given generation.
pub(crate) fn pack_free(generation: u64) -> u64 {
    (generation & GEN_MASK) << GEN_SHIFT
}

/// Packs a held slot word carrying the given generation and owner.
pub(crate) fn pack_held(generation: u64, owner: u32) -> u64 {
    HELD_BIT | ((generation & GEN_MASK) << GEN_SHIFT) | owner as u64
}

/// Whether the slot word is currently held.
pub(crate) fn is_held(word: u64) -> bool {
    word & HELD_BIT != 0
}

/// The generation stamped in the slot word.
pub(crate) fn generation(word: u64) -> u64 {
    (word >> GEN_SHIFT) & GEN_MASK
}

/// The owner tag stamped in the slot word (meaningful while held).
pub(crate) fn owner(word: u64) -> u32 {
    (word & OWNER_MASK) as u32
}

/// The successor generation, wrapping within the 31-bit field.
pub(crate) fn next_generation(generation: u64) -> u64 {
    generation.wrapping_add(1) & GEN_MASK
}

/// Number of process-registration slots every table carries. Generously
/// above the fleet sizes the chaos harness and benches run; dead
/// registrations are reclaimed (with a generation bump) so long-lived
/// deployments recycle slots rather than exhausting them.
pub const REGISTRY_SLOTS: usize = 64;
/// Registry word layout: pid in the low half, start-generation above it.
const REG_GEN_SHIFT: u32 = 32;
/// Owner-tag layout: `(slot + 1)` above this shift, generation low bits.
/// `slot + 1` keeps every registration tag `>= 2^24`, disjoint from the
/// small raw tags the in-process trait path stamps (`ctx.id() + 1`).
const TAG_SLOT_SHIFT: u32 = 24;
/// Mask of the generation bits a tag can carry.
const TAG_GEN_MASK: u32 = (1 << TAG_SLOT_SHIFT) - 1;

/// How [`RobustLeaseTable::tag_status`] classifies an owner tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagStatus {
    /// A small in-process tag (below `2^24`), never issued by the registry.
    /// The OS sweep cannot prove its owner dead and leaves its leases alone.
    Raw,
    /// A registration tag whose registry slot has since been re-registered
    /// (generation mismatch) or cleared: the original owner is gone.
    Stale,
    /// A current registration; the carried value is the registered OS pid.
    Registered(u32),
}

/// Proof of a process's registration with a [`RobustLeaseTable`]: the
/// registry slot it claimed, the start-generation stamped there, and the
/// pid it registered. Obtained from [`RobustLeaseTable::register_process`]
/// at attach time; [`Registration::tag`] is the owner tag to stamp into
/// every lease so sweeps can tell this incarnation from a later process
/// that recycled the same pid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Registration {
    slot: u32,
    generation: u32,
    pid: u32,
}

impl Registration {
    /// The owner tag to pass to [`RobustLeaseTable::acquire`]: packs the
    /// registry slot and the low bits of the start-generation. Always
    /// `>= 2^24`, so it never collides with in-process raw tags.
    pub fn tag(&self) -> u32 {
        ((self.slot + 1) << TAG_SLOT_SHIFT) | (self.generation & TAG_GEN_MASK)
    }

    /// The OS pid this registration was claimed for.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// The registry slot index claimed.
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// The start-generation stamped in the registry slot.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

/// A crash-robust lease table over arena-resident slot words.
///
/// # Example
///
/// ```
/// use adaptive_renaming::robust::RobustLeaseTable;
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let table = RobustLeaseTable::with_capacity(4);
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
/// let name = table.acquire(&mut ctx, 71).unwrap();
/// assert_eq!(name, 1);
/// assert_eq!(table.holder(name), Some(71));
/// // The owner crashes; a sweep with a liveness predicate reclaims it.
/// assert_eq!(table.sweep(&mut ctx, |owner| owner == 71), 1);
/// assert_eq!(table.holder(name), None);
/// ```
pub struct RobustLeaseTable {
    arena: Arc<Arena>,
    /// Slot `i` governs name `i + 1`; each register word is on its own
    /// arena cache line.
    slots: Vec<AtomicU64Register>,
    /// Count of completed `HELD → FREE` transitions (by releasers *or*
    /// sweepers). Doubles as the seqlock stamp that keeps exhaustion
    /// reports coherent: an acquire whose scan found nothing re-checks this
    /// counter and rescans if a release landed mid-scan.
    releases: AtomicUsizeRegister,
    /// Admission gate: nonzero while a sweep/recovery is in flight. An
    /// acquire that would report exhaustion backs off (bounded) instead, so
    /// recovery does not surface as spurious `CapacityExceeded` to callers
    /// racing the reclamation.
    gate: AtomicU64Register,
    /// Highest recovery epoch claimed so far: `claim_recovery` CASes it
    /// upward, so exactly one recoverer wins per epoch value.
    recovered_epoch: AtomicU64Register,
    /// Quarantine bitmap, one bit per name: set for slots recovery found
    /// torn/indeterminate, cleared (and the slot repaired) by the next
    /// sweep. A quarantined slot keeps its held flag, so the name is not
    /// grantable until drained.
    quarantine: Vec<AtomicU64Register>,
    /// Process registry: [`REGISTRY_SLOTS`] packed `generation << 32 | pid`
    /// words. Registration is a cold attach-time path, so the words are
    /// dense plain atomics rather than per-line registers.
    registry: ArenaSliceRef<AtomicU64>,
    capacity: usize,
}

impl RobustLeaseTable {
    /// Creates a table of `capacity` names over a fresh process-private
    /// arena sized exactly [`RobustLeaseTable::footprint`] bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_in(&Arena::heap(Self::footprint(capacity)), capacity)
    }

    /// Creates a table of `capacity` names whose slots live in the caller's
    /// `arena` — the cross-process constructor. Allocates
    /// [`RobustLeaseTable::footprint`] arena bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the arena runs out of space.
    /// The allocation order below is part of the cross-process contract: a
    /// process attaching to an existing file-backed arena re-runs this
    /// constructor in preserve mode and must land every word on the same
    /// offsets the creator used.
    pub fn with_capacity_in(arena: &Arc<Arena>, capacity: usize) -> Self {
        assert!(capacity > 0, "a lease table needs at least one name");
        let slots = (0..capacity)
            .map(|_| AtomicU64Register::new_in(arena, pack_free(0)))
            .collect();
        RobustLeaseTable {
            arena: Arc::clone(arena),
            slots,
            releases: AtomicUsizeRegister::new_in(arena, 0),
            gate: AtomicU64Register::new_in(arena, 0),
            recovered_epoch: AtomicU64Register::new_in(arena, 0),
            quarantine: (0..capacity.div_ceil(64))
                .map(|_| AtomicU64Register::new_in(arena, 0))
                .collect(),
            registry: arena.alloc_slice::<AtomicU64>(REGISTRY_SLOTS).pin(arena),
            capacity,
        }
    }

    /// The number of arena bytes the table allocates: one 64-byte line per
    /// slot, one each for the release stamp, the admission gate and the
    /// recovery epoch, one per quarantine word (64 names each), plus the
    /// dense [`REGISTRY_SLOTS`]-word process registry.
    pub fn footprint(capacity: usize) -> usize {
        capacity * 64 + 3 * 64 + capacity.div_ceil(64) * 64 + REGISTRY_SLOTS * 8
    }

    /// The arena holding the table's shared state.
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }

    /// The number of names the table governs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquires the lowest free name for `owner`, stamping the slot with a
    /// fresh generation. In cross-process deployments the owner should be
    /// the caller's OS pid ([`shmem::arena::os_pid`]) so
    /// [`RobustLeaseTable::sweep_dead_processes`] can reclaim after a crash.
    ///
    /// Costs one read per scanned slot plus one CAS per claim attempt
    /// (`O(capacity)` reads per scan; a scan repeats only when a concurrent
    /// release or grant moved the table under it).
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::CapacityExceeded`] when every slot is held —
    /// coherently: the failing scan is revalidated against the release
    /// stamp, so a release that landed mid-scan triggers a rescan instead of
    /// a spurious failure. While the admission gate is raised (a
    /// sweep/recovery in flight), an exhausted scan backs off and retries
    /// ([`Backoff`], bounded) before failing: the sweep is about to free the
    /// dead owners' names, so the exhaustion is very likely transient.
    pub fn acquire(&self, ctx: &mut ProcessCtx, owner_tag: u32) -> Result<usize, RenamingError> {
        let acquire_timer = obs::start();
        let mut backoff = Backoff::new();
        loop {
            let stamp = self.releases.read(ctx);
            let mut progress = false;
            for (index, slot) in self.slots.iter().enumerate() {
                let mut word = slot.read(ctx);
                while !is_held(word) {
                    let claimed = pack_held(next_generation(generation(word)), owner_tag);
                    match slot.compare_and_swap(ctx, word, claimed) {
                        Ok(_) => {
                            obs::count(obs::Metric::RobustAcquire);
                            obs::finish(acquire_timer, obs::Metric::RobustAcquireNs);
                            obs::event(
                                obs::EventKind::LeaseGranted,
                                (index + 1) as u64,
                                owner_tag as u64,
                            );
                            return Ok(index + 1);
                        }
                        Err(actual) => {
                            obs::count(obs::Metric::RobustCasRetry);
                            // Lost the race for this slot; it may have been
                            // re-freed with a newer generation, so re-read
                            // rather than skipping ahead (skipping would
                            // loosen the lowest-free-name discipline).
                            word = actual;
                            progress = true;
                        }
                    }
                }
            }
            // Every slot was held at its read point. Report exhaustion only
            // if no release landed while we scanned; otherwise the miss may
            // be incoherent — rescan.
            if !progress && self.releases.read(ctx) == stamp {
                if !backoff.is_completed() && self.gate.read(ctx) != 0 {
                    obs::count(obs::Metric::RobustGateWait);
                    backoff.snooze();
                    continue;
                }
                return Err(RenamingError::CapacityExceeded {
                    capacity: self.capacity,
                });
            }
        }
    }

    /// Releases a held name: the single CAS `HELD(g, owner) → FREE(g)`.
    /// Returns whether **this call** performed the transition — `false`
    /// means a sweeper (or an erroneous double release) got there first, in
    /// which case the call changes nothing; the transition still happened
    /// exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `name` is outside `1..=capacity`.
    pub fn release(&self, ctx: &mut ProcessCtx, name: usize) -> bool {
        let slot = self.slot(name);
        let word = slot.read(ctx);
        if !is_held(word) {
            return false;
        }
        if slot
            .compare_and_swap(ctx, word, pack_free(generation(word)))
            .is_ok()
        {
            self.releases.fetch_add(ctx, 1);
            obs::count(obs::Metric::RobustRelease);
            obs::event(obs::EventKind::LeaseReleased, name as u64, 0);
            true
        } else {
            obs::count(obs::Metric::RobustCasRetry);
            false
        }
    }

    /// Reclaims the names of dead owners: for every held slot whose owner
    /// `is_dead` declares gone, performs the same `HELD(g) → FREE(g)` CAS a
    /// release would, so a presumed-dead owner racing its own release
    /// resolves to exactly one transition. Returns the number of names
    /// reclaimed by this call.
    ///
    /// Correctness of the *namespace* (no two live holders of one name)
    /// relies on the predicate never declaring a live owner dead; the
    /// exactly-once transition holds regardless.
    pub fn sweep(&self, ctx: &mut ProcessCtx, mut is_dead: impl FnMut(u32) -> bool) -> usize {
        let mut reclaimed = 0;
        for (index, slot) in self.slots.iter().enumerate() {
            let word = slot.read(ctx);
            if is_held(word)
                && is_dead(owner(word))
                && slot
                    .compare_and_swap(ctx, word, pack_free(generation(word)))
                    .is_ok()
            {
                self.releases.fetch_add(ctx, 1);
                reclaimed += 1;
                obs::count(obs::Metric::RobustSwept);
                obs::event(
                    obs::EventKind::SweepReclaimed,
                    (index + 1) as u64,
                    owner(word) as u64,
                );
            }
        }
        reclaimed
    }

    /// Sweeps with the operating system as the liveness oracle — the sweep
    /// every surviving process runs after a peer crashes mid-lease over a
    /// shared arena (`tests/crash_reclaim.rs`).
    ///
    /// A held slot's owner tag is resolved through the process registry
    /// (see [`RobustLeaseTable::register_process`]):
    ///
    /// * a **stale** tag (its registry slot was re-registered since) is
    ///   dead by construction — this is the pid-reuse fix: the original
    ///   owner is gone even if *some* process now answers to its old pid;
    /// * a **registered** tag's pid is probed with
    ///   [`shmem::arena::os_process_alive`];
    /// * a **raw** in-process tag (below `2^24`, as stamped by the
    ///   [`LongLivedRenaming`] trait path) is never provably dead to the
    ///   OS and is left alone.
    ///
    /// The sweep finishes by draining the quarantine list, repairing any
    /// torn slots recovery parked there.
    ///
    /// As a postmortem hook, every distinct dead pid whose name this sweep
    /// reclaims is reported to [`obs::postmortem::notify_dead`]: if the
    /// sweeping process has a [`obs::FlightRecorder`] installed and the dead
    /// process had attached one of its rings, the dead process's last
    /// recorded events are dumped for inspection.
    #[cfg(all(unix, not(miri)))]
    pub fn sweep_dead_processes(&self, ctx: &mut ProcessCtx) -> usize {
        let mut dead_pids: Vec<u32> = Vec::new();
        let reclaimed = self.sweep(ctx, |tag| match self.tag_status(tag) {
            TagStatus::Raw => false,
            TagStatus::Stale => true,
            TagStatus::Registered(pid) => {
                let dead = !shmem::arena::os_process_alive(pid);
                if dead && !dead_pids.contains(&pid) {
                    dead_pids.push(pid);
                }
                dead
            }
        });
        let repaired = self.drain_quarantine(ctx);
        for pid in dead_pids {
            obs::postmortem::notify_dead(pid);
        }
        reclaimed + repaired
    }

    /// Registers `pid` with the table, claiming a registry slot and a fresh
    /// start-generation; the returned [`Registration`]'s
    /// [`tag`](Registration::tag) is the owner tag this process should
    /// stamp into its leases. A slot is claimable if it is empty or already
    /// carries `pid` (re-registration bumps the generation, immediately
    /// staling the previous incarnation's leases). This variant never
    /// probes the OS, so it is deterministic under miri and the virtual
    /// executor; cross-process callers use
    /// [`RobustLeaseTable::register_current_process`], which also recycles
    /// dead processes' slots.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::CapacityExceeded`] when no registry slot is
    /// claimable.
    pub fn register_process(&self, pid: u32) -> Result<Registration, RenamingError> {
        self.claim_registry_slot(pid, |_| false)
    }

    /// Registers the calling OS process ([`shmem::arena::os_pid`]),
    /// additionally reclaiming registry slots whose pid no longer probes
    /// alive — a restart registers over its dead predecessors. The
    /// generation bump on reclaim is what keeps this sound: the dead
    /// incarnation's leases carry the old generation and resolve as
    /// [`TagStatus::Stale`].
    #[cfg(all(unix, not(miri)))]
    pub fn register_current_process(&self) -> Result<Registration, RenamingError> {
        self.claim_registry_slot(shmem::arena::os_pid(), |pid| {
            !shmem::arena::os_process_alive(pid)
        })
    }

    fn claim_registry_slot(
        &self,
        pid: u32,
        mut reclaimable: impl FnMut(u32) -> bool,
    ) -> Result<Registration, RenamingError> {
        assert!(pid != 0, "pid 0 is the registry's empty-slot marker");
        for (index, word) in self.registry.iter().enumerate() {
            let mut seen = word.load(Ordering::SeqCst);
            loop {
                let (old_pid, old_gen) = (seen as u32, (seen >> REG_GEN_SHIFT) as u32);
                if old_pid != 0 && old_pid != pid && !reclaimable(old_pid) {
                    break; // occupied by a live stranger; next slot
                }
                // Skip generations whose low tag bits are zero so a tag is
                // never 0 (0 is the torn-slot marker in lease words).
                let mut generation = old_gen.wrapping_add(1);
                if generation & TAG_GEN_MASK == 0 {
                    generation = generation.wrapping_add(1);
                }
                let claimed = ((generation as u64) << REG_GEN_SHIFT) | pid as u64;
                match word.compare_exchange(seen, claimed, Ordering::SeqCst, Ordering::SeqCst) {
                    Ok(_) => {
                        return Ok(Registration {
                            slot: index as u32,
                            generation,
                            pid,
                        })
                    }
                    Err(actual) => seen = actual, // re-judge the slot
                }
            }
        }
        Err(RenamingError::CapacityExceeded {
            capacity: REGISTRY_SLOTS,
        })
    }

    /// Classifies an owner tag against the current registry (see
    /// [`TagStatus`]).
    pub fn tag_status(&self, tag: u32) -> TagStatus {
        let slot = (tag >> TAG_SLOT_SHIFT) as usize;
        if slot == 0 {
            return TagStatus::Raw;
        }
        let Some(word) = self.registry.get(slot - 1) else {
            return TagStatus::Stale; // beyond REGISTRY_SLOTS: never issued
        };
        let current = word.load(Ordering::SeqCst);
        let (pid, generation) = (current as u32, (current >> REG_GEN_SHIFT) as u32);
        if pid != 0 && generation & TAG_GEN_MASK == tag & TAG_GEN_MASK {
            TagStatus::Registered(pid)
        } else {
            TagStatus::Stale
        }
    }

    /// The registered pid a tag currently resolves to, if any.
    pub fn resolve_tag(&self, tag: u32) -> Option<u32> {
        match self.tag_status(tag) {
            TagStatus::Registered(pid) => Some(pid),
            _ => None,
        }
    }

    /// The OS pid behind a held name's owner tag (harness/test inspection):
    /// `None` if the name is free or its tag does not resolve to a current
    /// registration.
    pub fn owner_pid(&self, name: usize) -> Option<u32> {
        self.holder(name).and_then(|tag| self.resolve_tag(tag))
    }

    /// All current registrations, as `(registration, pid)`-bearing
    /// [`Registration`] values (harness/restart inspection).
    pub fn registrations(&self) -> Vec<Registration> {
        self.registry
            .iter()
            .enumerate()
            .filter_map(|(index, word)| {
                let current = word.load(Ordering::SeqCst);
                let pid = current as u32;
                (pid != 0).then_some(Registration {
                    slot: index as u32,
                    generation: (current >> REG_GEN_SHIFT) as u32,
                    pid,
                })
            })
            .collect()
    }

    /// Whether no registered process probes alive — the restart signature:
    /// after a whole-fleet kill every registry pid is dead, which licenses
    /// recovery to presume every held slot's owner gone. (A table nobody
    /// ever registered with also reports `true`; cross-process deployments
    /// must register before acquiring for restart detection to be sound.)
    #[cfg(all(unix, not(miri)))]
    pub fn no_registered_survivors(&self) -> bool {
        self.registrations()
            .iter()
            .all(|registration| !shmem::arena::os_process_alive(registration.pid()))
    }

    /// Raises the admission gate: until released, acquirers that find the
    /// table exhausted back off and retry instead of failing. Called by
    /// recovery around its reclamation scan.
    pub fn hold_admissions(&self, ctx: &mut ProcessCtx) {
        self.gate.write(ctx, 1);
    }

    /// Lowers the admission gate.
    pub fn release_admissions(&self, ctx: &mut ProcessCtx) {
        self.gate.write(ctx, 0);
    }

    /// Whether the admission gate is currently raised (inspection).
    pub fn admissions_gated(&self) -> bool {
        self.gate.peek() != 0
    }

    /// Claims the right to run recovery for `epoch`: CASes the recovery
    /// epoch upward and returns whether **this caller** won. Exactly one
    /// claimant wins per epoch value, so two attachers racing `recover`
    /// with the same epoch serialize to one effective run (the loser
    /// returns immediately — recovery is idempotent, so it has nothing to
    /// wait for).
    pub fn claim_recovery(&self, ctx: &mut ProcessCtx, epoch: u64) -> bool {
        let mut seen = self.recovered_epoch.read(ctx);
        loop {
            if seen >= epoch {
                return false;
            }
            match self.recovered_epoch.compare_and_swap(ctx, seen, epoch) {
                Ok(_) => return true,
                Err(actual) => seen = actual,
            }
        }
    }

    /// The highest recovery epoch claimed so far (inspection).
    pub fn last_recovered_epoch(&self) -> u64 {
        self.recovered_epoch.peek()
    }

    /// Parks `name` on the quarantine list (idempotent: returns whether
    /// this call set the bit). Recovery quarantines slots it finds torn —
    /// held with owner tag 0, the signature of a kill between an owner
    /// stamp and its publication — rather than guessing; the slot keeps its
    /// held flag (the name stays ungrantable) until the next sweep drains
    /// the list and repairs it.
    pub fn quarantine_name(&self, ctx: &mut ProcessCtx, name: usize) -> bool {
        assert!(
            (1..=self.capacity).contains(&name),
            "name {name} outside the table's 1..={} namespace",
            self.capacity
        );
        let (word, bit) = (&self.quarantine[(name - 1) / 64], 1u64 << ((name - 1) % 64));
        let mut seen = word.read(ctx);
        loop {
            if seen & bit != 0 {
                return false;
            }
            match word.compare_and_swap(ctx, seen, seen | bit) {
                Ok(_) => {
                    obs::count(obs::Metric::RobustQuarantined);
                    obs::event(obs::EventKind::Quarantined, name as u64, 0);
                    return true;
                }
                Err(actual) => seen = actual,
            }
        }
    }

    /// Names currently quarantined (inspection).
    pub fn quarantined(&self) -> usize {
        self.quarantine
            .iter()
            .map(|word| word.peek().count_ones() as usize)
            .sum()
    }

    /// Drains the quarantine list: each bit is claimed with a CAS (so
    /// concurrent drains split the work without double-repairing) and its
    /// slot, if still torn, is repaired `HELD(g, 0) → FREE(g + 1)` — the
    /// generation bump makes any straggler CAS against the torn word fail,
    /// exactly like a regrant. Returns the number of slots repaired.
    pub fn drain_quarantine(&self, ctx: &mut ProcessCtx) -> usize {
        let mut repaired = 0;
        for (word_index, word) in self.quarantine.iter().enumerate() {
            loop {
                let bits = word.read(ctx);
                if bits == 0 {
                    break;
                }
                let bit = bits & bits.wrapping_neg();
                if word.compare_and_swap(ctx, bits, bits & !bit).is_err() {
                    continue; // someone else drained a bit; re-read
                }
                let name = word_index * 64 + bit.trailing_zeros() as usize + 1;
                let slot = self.slot(name);
                let observed = slot.read(ctx);
                if is_held(observed)
                    && owner(observed) == 0
                    && slot
                        .compare_and_swap(
                            ctx,
                            observed,
                            pack_free(next_generation(generation(observed))),
                        )
                        .is_ok()
                {
                    self.releases.fetch_add(ctx, 1);
                    repaired += 1;
                    obs::count(obs::Metric::RobustSwept);
                    obs::event(obs::EventKind::SweepReclaimed, name as u64, 0);
                }
            }
        }
        repaired
    }

    /// Injects a torn slot — `FREE(g) → HELD(g + 1, owner 0)`, the state a
    /// kill between claiming a slot and publishing a real owner leaves
    /// behind. Chaos-harness fault hook; returns whether the injection
    /// landed (the name was free).
    pub fn inject_torn_slot(&self, ctx: &mut ProcessCtx, name: usize) -> bool {
        let slot = self.slot(name);
        let word = slot.read(ctx);
        !is_held(word)
            && slot
                .compare_and_swap(ctx, word, pack_held(next_generation(generation(word)), 0))
                .is_ok()
    }

    /// A flat copy of the table's observable lease state — every slot word,
    /// the quarantine bitmap, and the transition count. Two snapshots being
    /// equal means the namespaces are byte-identical; the recovery
    /// idempotence tests pin `recover ∘ recover = recover` with it. (The
    /// recovery epoch itself is deliberately excluded: it is arbitration
    /// state, not lease state.)
    pub fn state_snapshot(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(AtomicU64Register::peek)
            .chain(self.quarantine.iter().map(AtomicU64Register::peek))
            .chain(std::iter::once(self.releases.peek() as u64))
            .collect()
    }

    /// The slot registers, for the recovery scan (same-crate only).
    pub(crate) fn slot_registers(&self) -> &[AtomicU64Register] {
        &self.slots
    }

    /// Counts a completed `HELD → FREE` transition performed externally by
    /// the recovery scan (same-crate only).
    pub(crate) fn note_transition(&self, ctx: &mut ProcessCtx) {
        self.releases.fetch_add(ctx, 1);
    }

    /// The owner of a held name, or `None` if the name is free
    /// (harness/test inspection only, never from algorithm code).
    pub fn holder(&self, name: usize) -> Option<u32> {
        let word = self.slot(name).peek();
        is_held(word).then(|| owner(word))
    }

    /// The generation stamped on a name's slot (harness/test inspection).
    pub fn generation_of(&self, name: usize) -> u64 {
        generation(self.slot(name).peek())
    }

    /// The number of completed `HELD → FREE` transitions, by releasers and
    /// sweepers combined (harness/test inspection). Exactly-once means this
    /// equals the number of completed grants at any quiescent point.
    pub fn transitions(&self) -> usize {
        self.releases.peek()
    }

    fn slot(&self, name: usize) -> &AtomicU64Register {
        assert!(
            (1..=self.capacity).contains(&name),
            "name {name} outside the table's 1..={} namespace",
            self.capacity
        );
        &self.slots[name - 1]
    }
}

impl LongLivedRenaming for RobustLeaseTable {
    fn lease(self: Arc<Self>, ctx: &mut ProcessCtx) -> Result<NameLease, RenamingError> {
        let name = self.lease_raw(ctx)?;
        Ok(NameLease::new(name, self))
    }

    /// The trait path stamps ownership with the simulated process identity
    /// (`ctx.id() + 1`, kept nonzero); cross-process callers use
    /// [`RobustLeaseTable::acquire`] directly with their OS pid.
    fn lease_raw(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        let owner_tag = (ctx.id().as_u64() as u32).wrapping_add(1);
        self.acquire(ctx, owner_tag)
    }

    fn release_raw(&self, name: usize) {
        // The raw path has no caller context to charge; release through an
        // ephemeral one (step accounting lands nowhere, exactly like the
        // other recyclers' unaccounted release paths).
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        self.release(&mut ctx, name);
    }

    fn max_concurrent(&self) -> Option<usize> {
        Some(self.capacity)
    }

    fn live_leases(&self) -> usize {
        self.slots
            .iter()
            .filter(|slot| is_held(slot.peek()))
            .count()
    }
}

impl fmt::Debug for RobustLeaseTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RobustLeaseTable")
            .field("capacity", &self.capacity)
            .field("live", &self.live_leases())
            .field("transitions", &self.transitions())
            .field("backend", &self.arena.backend())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(id: usize) -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(id), 17)
    }

    #[test]
    fn slot_words_pack_and_unpack() {
        for (g, o) in [(0u64, 0u32), (1, 71), (GEN_MASK, u32::MAX)] {
            let free = pack_free(g);
            assert!(!is_held(free));
            assert_eq!(generation(free), g);
            let held = pack_held(g, o);
            assert!(is_held(held));
            assert_eq!(generation(held), g);
            assert_eq!(owner(held), o);
        }
        assert_eq!(next_generation(GEN_MASK), 0, "generations wrap in-field");
        assert_eq!(
            pack_free(GEN_MASK) & HELD_BIT,
            0,
            "gen never leaks into the flag"
        );
    }

    #[test]
    fn acquire_grants_lowest_free_names_and_bumps_generations() {
        let table = RobustLeaseTable::with_capacity(3);
        let mut ctx = ctx(0);
        assert_eq!(table.acquire(&mut ctx, 7).unwrap(), 1);
        assert_eq!(table.acquire(&mut ctx, 7).unwrap(), 2);
        assert_eq!(table.holder(1), Some(7));
        assert_eq!(table.generation_of(1), 1);
        assert!(table.release(&mut ctx, 1));
        assert_eq!(table.holder(1), None);
        // The freed minimum is reused, with a bumped generation.
        assert_eq!(table.acquire(&mut ctx, 9).unwrap(), 1);
        assert_eq!(table.generation_of(1), 2);
        assert_eq!(table.holder(1), Some(9));
    }

    #[test]
    fn exhaustion_is_reported_and_recovers() {
        let table = RobustLeaseTable::with_capacity(2);
        let mut ctx = ctx(0);
        table.acquire(&mut ctx, 1).unwrap();
        table.acquire(&mut ctx, 1).unwrap();
        assert!(matches!(
            table.acquire(&mut ctx, 1),
            Err(RenamingError::CapacityExceeded { capacity: 2 })
        ));
        assert!(table.release(&mut ctx, 2));
        assert_eq!(table.acquire(&mut ctx, 1).unwrap(), 2);
    }

    #[test]
    fn release_is_exactly_once() {
        let table = RobustLeaseTable::with_capacity(2);
        let mut ctx = ctx(0);
        let name = table.acquire(&mut ctx, 3).unwrap();
        assert!(table.release(&mut ctx, name));
        assert!(!table.release(&mut ctx, name), "double release is a no-op");
        assert_eq!(table.transitions(), 1);
    }

    #[test]
    fn sweep_reclaims_dead_owners_only() {
        let table = RobustLeaseTable::with_capacity(4);
        let mut ctx = ctx(0);
        let dead = table.acquire(&mut ctx, 100).unwrap();
        let live = table.acquire(&mut ctx, 200).unwrap();
        assert_eq!(table.sweep(&mut ctx, |o| o == 100), 1);
        assert_eq!(table.holder(dead), None);
        assert_eq!(table.holder(live), Some(200));
        // The reclaimed minimum is immediately grantable again.
        assert_eq!(table.acquire(&mut ctx, 300).unwrap(), dead);
        // A second sweep for the same owner finds nothing.
        assert_eq!(table.sweep(&mut ctx, |o| o == 100), 0);
        assert_eq!(table.transitions(), 1);
    }

    #[test]
    fn tardy_release_after_a_sweep_cannot_free_the_regrant() {
        // The ABA guard: sweep frees HELD(g), a new grant takes the slot at
        // g+1; the tardy owner's release must fail against the regrant.
        let table = RobustLeaseTable::with_capacity(1);
        let mut ctx = ctx(0);
        let name = table.acquire(&mut ctx, 1).unwrap();
        assert_eq!(table.sweep(&mut ctx, |_| true), 1);
        assert_eq!(table.acquire(&mut ctx, 2).unwrap(), name);
        // A release targeting the regrant *would* free it (release checks
        // the held flag, not the caller's identity) — but the slot the
        // tardy releaser observed carried generation 1, and a CAS against
        // that stale word fails. Simulate it at the packing level:
        assert_ne!(
            pack_held(1, 1),
            table.slot(name).peek(),
            "the regrant's word differs, so the stale CAS cannot apply"
        );
        assert_eq!(table.generation_of(name), 2);
    }

    #[test]
    fn arena_backed_table_has_an_exact_footprint() {
        let arena = Arena::heap(RobustLeaseTable::footprint(8));
        let table = RobustLeaseTable::with_capacity_in(&arena, 8);
        assert_eq!(arena.remaining(), 0, "footprint is exact");
        let mut ctx = ctx(0);
        assert_eq!(table.acquire(&mut ctx, 5).unwrap(), 1);
        assert_eq!(table.live_leases(), 1);
    }

    #[test]
    fn the_long_lived_trait_surface_works() {
        let table: Arc<dyn LongLivedRenaming> = Arc::new(RobustLeaseTable::with_capacity(4));
        assert_eq!(table.max_concurrent(), Some(4));
        let mut ctx = ctx(6);
        let lease = Arc::clone(&table).lease(&mut ctx).unwrap();
        assert_eq!(lease.name(), 1);
        assert_eq!(table.live_leases(), 1);
        drop(lease);
        assert_eq!(table.live_leases(), 0);
        let raw = table.lease_raw(&mut ctx).unwrap();
        table.release_raw(raw);
        assert_eq!(table.live_leases(), 0);
    }

    #[test]
    fn registration_tags_are_disjoint_from_raw_tags_and_stale_out() {
        let table = RobustLeaseTable::with_capacity(4);
        let first = table.register_process(500).unwrap();
        assert!(
            first.tag() >= 1 << TAG_SLOT_SHIFT,
            "registration tags live above the raw-tag range"
        );
        assert_eq!(table.tag_status(7), TagStatus::Raw);
        assert_eq!(table.tag_status(first.tag()), TagStatus::Registered(500));
        assert_eq!(table.resolve_tag(first.tag()), Some(500));

        // Re-registering the same pid reuses the slot with a bumped
        // generation: the first incarnation's tag goes stale.
        let second = table.register_process(500).unwrap();
        assert_eq!(second.slot(), first.slot());
        assert_ne!(second.tag(), first.tag());
        assert_eq!(table.tag_status(first.tag()), TagStatus::Stale);
        assert_eq!(table.tag_status(second.tag()), TagStatus::Registered(500));

        // A tag fabricated for a never-issued slot is stale, not a panic.
        let bogus = ((REGISTRY_SLOTS as u32) + 5) << TAG_SLOT_SHIFT;
        assert_eq!(table.tag_status(bogus), TagStatus::Stale);
    }

    #[test]
    fn registry_exhaustion_is_reported() {
        let table = RobustLeaseTable::with_capacity(1);
        for pid in 1..=REGISTRY_SLOTS as u32 {
            table.register_process(pid).unwrap();
        }
        assert!(matches!(
            table.register_process(9999),
            Err(RenamingError::CapacityExceeded { capacity }) if capacity == REGISTRY_SLOTS
        ));
    }

    /// The pid-reuse regression: `kill(pid, 0)` succeeding proves *a*
    /// process with that pid is alive, not *our* owner. Simulate the
    /// recycled-pid scenario with this test's own (certainly alive) pid:
    /// the dead incarnation's lease must be reclaimed anyway, because its
    /// registration generation no longer matches.
    #[test]
    #[cfg(all(unix, not(miri)))]
    fn sweep_is_not_fooled_by_a_recycled_pid() {
        let alive_pid = shmem::arena::os_pid();
        let table = RobustLeaseTable::with_capacity(4);
        let mut ctx = ctx(0);

        // Incarnation one registers, leases, and "crashes"; the OS then
        // hands its pid to a new process, which registers over the slot.
        let dead_incarnation = table.register_process(alive_pid).unwrap();
        let orphaned = table.acquire(&mut ctx, dead_incarnation.tag()).unwrap();
        let new_incarnation = table.register_process(alive_pid).unwrap();
        let live_name = table.acquire(&mut ctx, new_incarnation.tag()).unwrap();

        // The pid probes alive — a raw-pid sweep would leak `orphaned`
        // forever. The generation check reclaims it and keeps `live_name`.
        assert!(shmem::arena::os_process_alive(alive_pid));
        assert_eq!(table.sweep_dead_processes(&mut ctx), 1);
        assert_eq!(table.holder(orphaned), None);
        assert_eq!(table.holder(live_name), Some(new_incarnation.tag()));
        assert_eq!(table.owner_pid(live_name), Some(alive_pid));

        // Raw in-process tags are left alone: the OS cannot prove them dead.
        let raw = table.acquire(&mut ctx, 3).unwrap();
        assert_eq!(table.sweep_dead_processes(&mut ctx), 0);
        assert_eq!(table.holder(raw), Some(3));
    }

    #[test]
    #[cfg(all(unix, not(miri)))]
    fn register_current_process_recycles_dead_registrations() {
        let table = RobustLeaseTable::with_capacity(2);
        // Fill the registry with pids that cannot be alive (beyond pid_max
        // is unprobeable; use distinct large u32 values — `kill` rejects
        // them with ESRCH, which os_process_alive reports as dead).
        for pid in 0..REGISTRY_SLOTS as u32 {
            table.register_process(0x7000_0000 + pid).unwrap();
        }
        // A full registry of corpses still admits the living.
        let mine = table.register_current_process().unwrap();
        assert_eq!(mine.pid(), shmem::arena::os_pid());
        assert_eq!(
            table.tag_status(mine.tag()),
            TagStatus::Registered(mine.pid())
        );
    }

    #[test]
    fn quarantined_names_stay_ungrantable_until_drained() {
        let table = RobustLeaseTable::with_capacity(2);
        let mut ctx = ctx(0);
        assert!(table.inject_torn_slot(&mut ctx, 1));
        assert!(table.quarantine_name(&mut ctx, 1));
        assert!(!table.quarantine_name(&mut ctx, 1), "idempotent");
        assert_eq!(table.quarantined(), 1);
        // The torn slot holds its name: only slot 2 is grantable.
        assert_eq!(table.acquire(&mut ctx, 9).unwrap(), 2);
        assert!(matches!(
            table.acquire(&mut ctx, 9),
            Err(RenamingError::CapacityExceeded { .. })
        ));
        // Draining repairs the slot with a generation bump (ABA-safe) and
        // the name comes back.
        let torn_generation = table.generation_of(1);
        assert_eq!(table.drain_quarantine(&mut ctx), 1);
        assert_eq!(table.quarantined(), 0);
        assert_eq!(table.generation_of(1), torn_generation + 1);
        assert_eq!(table.acquire(&mut ctx, 9).unwrap(), 1);
        // A drained bit does not come back; re-draining is a no-op.
        assert_eq!(table.drain_quarantine(&mut ctx), 0);
    }

    #[test]
    fn a_raised_gate_bounds_exhaustion_retries_instead_of_hanging() {
        let table = RobustLeaseTable::with_capacity(1);
        let mut ctx = ctx(0);
        table.acquire(&mut ctx, 1).unwrap();
        table.hold_admissions(&mut ctx);
        assert!(table.admissions_gated());
        // Nobody will release: the bounded backoff must expire into the
        // ordinary capacity error, not spin forever.
        assert!(matches!(
            table.acquire(&mut ctx, 2),
            Err(RenamingError::CapacityExceeded { capacity: 1 })
        ));
        table.release_admissions(&mut ctx);
        assert!(!table.admissions_gated());
    }

    #[test]
    fn a_release_during_a_gated_wait_is_picked_up() {
        // The gate's purpose: an acquirer that would have failed keeps
        // rescanning while recovery frees capacity under it.
        let table = Arc::new(RobustLeaseTable::with_capacity(1));
        let mut ctx = ctx(0);
        let name = table.acquire(&mut ctx, 1).unwrap();
        table.hold_admissions(&mut ctx);
        let releaser = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                let mut ctx = ProcessCtx::new(ProcessId::new(1), 5);
                table.release(&mut ctx, name);
                table.release_admissions(&mut ctx);
            })
        };
        // Whether the release lands mid-scan (ordinary rescan) or during a
        // gated snooze (the new path), the acquire must eventually succeed
        // once the releaser has run; retry across backoff expiries so the
        // test is schedule-independent.
        let granted = loop {
            match table.acquire(&mut ctx, 2) {
                Ok(granted) => break granted,
                Err(_) => std::thread::yield_now(),
            }
        };
        releaser.join().unwrap();
        assert_eq!(granted, name);
        assert_eq!(table.holder(name), Some(2));
    }

    #[test]
    fn concurrent_churn_with_a_lying_sweeper_transitions_exactly_once() {
        // Threads churn acquire/release while a sweeper declares everyone
        // dead: every grant's HELD → FREE transition must happen exactly
        // once no matter who performs it.
        let threads = 4usize;
        let cycles = if cfg!(miri) { 10 } else { 300 };
        let table = Arc::new(RobustLeaseTable::with_capacity(threads));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sweeper = {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ctx = ctx(99);
                let mut swept = 0usize;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    swept += table.sweep(&mut ctx, |_| true);
                }
                swept
            })
        };
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let table = Arc::clone(&table);
                std::thread::spawn(move || {
                    let mut ctx = ctx(t);
                    let mut granted = 0usize;
                    for _ in 0..cycles {
                        if let Ok(name) = table.acquire(&mut ctx, t as u32 + 1) {
                            granted += 1;
                            table.release(&mut ctx, name);
                        }
                    }
                    granted
                })
            })
            .collect();
        let granted: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let swept = sweeper.join().unwrap();
        // Quiescent now: every grant was freed by exactly one transition.
        assert_eq!(table.live_leases(), 0);
        assert_eq!(table.transitions(), granted);
        assert!(swept <= granted);
    }
}
