//! A lock-free, lazily initialized slab of comparator objects.
//!
//! The renaming engine stores one two-process test-and-set per comparator of
//! the underlying sorting network. The network's
//! [`CompiledSchedule`](sortnet::compiled::CompiledSchedule) assigns every
//! comparator a *dense index*, so the natural store is a pre-sized
//! contiguous array indexed by that slot — no hashing, no global lock, no
//! `Arc` clone on the traversal path. Each cell is a [`OnceLock`], which
//! preserves the engine's lazy-allocation semantics (a comparator object
//! exists only once some process actually reaches it — observable through
//! [`ComparatorSlab::allocated`]): every contender resolves first touch to
//! the same object, and all subsequent reads are a single atomic acquire
//! load. The only blocking the slab can introduce is per-cell and one-time —
//! a contender arriving while a cell's `T::default()` is still running waits
//! for it — after which the cell is immutable and lock-free forever.

use std::fmt;
use std::sync::OnceLock;

/// A fixed-capacity slab of lazily created `T`s, one per dense comparator
/// slot.
///
/// Reads after initialization are a single atomic acquire load; the returned
/// reference borrows from the slab, so playing a comparator performs no
/// reference-count traffic at all.
///
/// # Example
///
/// ```
/// use adaptive_renaming::comparator_slab::ComparatorSlab;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// #[derive(Default)]
/// struct Cell(AtomicUsize);
///
/// let slab: ComparatorSlab<Cell> = ComparatorSlab::new(4);
/// assert_eq!(slab.allocated(), 0);
/// slab.get(2).0.fetch_add(1, Ordering::Relaxed);
/// slab.get(2).0.fetch_add(1, Ordering::Relaxed);
/// assert_eq!(slab.allocated(), 1);
/// assert_eq!(slab.get(2).0.load(Ordering::Relaxed), 2);
/// ```
pub struct ComparatorSlab<T> {
    cells: Box<[OnceLock<T>]>,
}

impl<T> ComparatorSlab<T> {
    /// Creates a slab with `len` empty cells.
    pub fn new(len: usize) -> Self {
        let mut cells = Vec::with_capacity(len);
        cells.resize_with(len, OnceLock::new);
        ComparatorSlab {
            cells: cells.into_boxed_slice(),
        }
    }

    /// Creates a slab whose cells are pre-filled with the given values (used
    /// when the caller supplies ready-made objects instead of relying on
    /// lazy creation, e.g. `BitBatchingRenaming::with_slots`).
    pub fn from_values<I: IntoIterator<Item = T>>(values: I) -> Self {
        ComparatorSlab {
            cells: values
                .into_iter()
                .map(|value| {
                    let cell = OnceLock::new();
                    let _ = cell.set(value);
                    cell
                })
                .collect(),
        }
    }

    /// The object at `slot`, created by `init` on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.len()`.
    #[inline]
    pub fn get_with<F: FnOnce() -> T>(&self, slot: usize, init: F) -> &T {
        self.cells[slot].get_or_init(init)
    }

    /// The object at `slot` if some process already touched it.
    pub fn peek(&self, slot: usize) -> Option<&T> {
        self.cells.get(slot).and_then(OnceLock::get)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the slab has no slots.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of objects created so far (harness inspection; O(len)).
    pub fn allocated(&self) -> usize {
        self.cells
            .iter()
            .filter(|cell| cell.get().is_some())
            .count()
    }
}

impl<T: Default> ComparatorSlab<T> {
    /// The object at `slot`, default-created on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.len()`.
    #[inline]
    pub fn get(&self, slot: usize) -> &T {
        self.get_with(slot, T::default)
    }
}

impl<T> fmt::Debug for ComparatorSlab<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComparatorSlab")
            .field("slots", &self.cells.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[derive(Default)]
    struct Counter(AtomicUsize);

    #[test]
    fn cells_initialize_lazily_and_once() {
        let slab: ComparatorSlab<Counter> = ComparatorSlab::new(8);
        assert_eq!(slab.len(), 8);
        assert!(!slab.is_empty());
        assert_eq!(slab.allocated(), 0);
        assert!(slab.peek(3).is_none());
        slab.get(3).0.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(test-only single-threaded counter)
        slab.get(3).0.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(test-only single-threaded counter)
        assert_eq!(slab.allocated(), 1);
        assert_eq!(slab.peek(3).unwrap().0.load(Ordering::Relaxed), 2); // lint: relaxed-ok(test-only single-threaded counter)
        assert!(slab.peek(99).is_none(), "out-of-range peek is None");
    }

    #[test]
    fn concurrent_first_touch_yields_one_object() {
        let slab: Arc<ComparatorSlab<Counter>> = Arc::new(ComparatorSlab::new(4));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let slab = Arc::clone(&slab);
                scope.spawn(move || {
                    for slot in 0..4 {
                        slab.get(slot).0.fetch_add(1, Ordering::Relaxed); // lint: relaxed-ok(test-only counter; threads joined before the assert)
                    }
                });
            }
        });
        assert_eq!(slab.allocated(), 4);
        for slot in 0..4 {
            // lint: relaxed-ok(test-only counter; threads joined before the assert)
            assert_eq!(slab.get(slot).0.load(Ordering::Relaxed), 8, "slot {slot}");
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_get_panics() {
        let slab: ComparatorSlab<Counter> = ComparatorSlab::new(2);
        let _ = slab.get(2);
    }

    #[test]
    fn zero_length_slab_is_empty() {
        let slab: ComparatorSlab<Counter> = ComparatorSlab::new(0);
        assert!(slab.is_empty());
        assert_eq!(slab.allocated(), 0);
        assert!(format!("{slab:?}").contains("ComparatorSlab"));
    }
}
