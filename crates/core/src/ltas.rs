//! The linearizable ℓ-test-and-set object (§8.2, Algorithm 1).
//!
//! An ℓ-test-and-set generalizes test-and-set to ℓ winners: its sequential
//! specification is that the first ℓ invocations return `true` and every
//! later invocation returns `false`. The paper implements it from adaptive
//! strong renaming plus a *doorway* bit: an invocation first checks the
//! doorway; if it is still open it acquires a name and wins exactly when the
//! name is at most ℓ, closing the doorway otherwise. Lemma 5 shows this is
//! linearizable with expected step complexity `O(log k)`.

use crate::traits::Renaming;
use shmem::consistency::SequentialSpec;
use shmem::process::ProcessCtx;
use shmem::register::AtomicBoolRegister;
use std::fmt;
use std::sync::Arc;

/// The §8.2 ℓ-test-and-set: at most `limit` invocations win.
///
/// Each participating process invokes the object at most once (the underlying
/// renaming object hands each participant a single name).
///
/// # Example
///
/// ```
/// use adaptive_renaming::ltas::BoundedTas;
/// use shmem::adversary::ExecConfig;
/// use shmem::executor::Executor;
/// use std::sync::Arc;
///
/// let ltas = Arc::new(BoundedTas::new(3));
/// let outcome = Executor::new(ExecConfig::new(9)).run(8, {
///     let ltas = Arc::clone(&ltas);
///     move |ctx| ltas.invoke(ctx)
/// });
/// let winners = outcome.results().into_iter().filter(|w| *w).count();
/// assert_eq!(winners, 3);
/// ```
pub struct BoundedTas<R: Renaming = Arc<dyn Renaming>> {
    /// `false` = open, `true` = closed.
    doorway: AtomicBoolRegister,
    renaming: R,
    limit: usize,
}

impl BoundedTas<Arc<dyn Renaming>> {
    /// Creates an ℓ-test-and-set with `limit` winners over the default
    /// adaptive renaming backend, constructed through the
    /// [builder](crate::builder::RenamingBuilder) facade.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn new(limit: usize) -> Self {
        Self::with_renaming(
            <dyn Renaming>::builder()
                .build()
                .expect("the default adaptive configuration is always valid"),
            limit,
        )
    }
}

impl<R: Renaming> BoundedTas<R> {
    /// Creates an ℓ-test-and-set over an explicit renaming backend.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn with_renaming(renaming: R, limit: usize) -> Self {
        assert!(limit > 0, "an l-test-and-set needs at least one winner");
        BoundedTas {
            doorway: AtomicBoolRegister::new(false),
            renaming,
            limit,
        }
    }

    /// The number of invocations that may win.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Invokes the object: returns `true` for at most [`BoundedTas::limit`]
    /// callers.
    pub fn invoke(&self, ctx: &mut ProcessCtx) -> bool {
        if self.doorway.read(ctx) {
            return false;
        }
        match self.renaming.acquire(ctx) {
            Ok(name) if name <= self.limit => true,
            Ok(_) => {
                self.doorway.write(ctx, true);
                false
            }
            Err(_) => {
                // A bounded backend ran out of names; the invocation cannot
                // win, and later arrivals should not bother the backend.
                self.doorway.write(ctx, true);
                false
            }
        }
    }
}

impl<R: Renaming> fmt::Debug for BoundedTas<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedTas")
            .field("limit", &self.limit)
            .field("doorway_closed", &self.doorway.peek())
            .finish()
    }
}

/// Sequential specification of an ℓ-test-and-set, for the linearizability
/// checker: the first `limit` operations return `true`, the rest `false`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundedTasSpec {
    /// The number of winning invocations.
    pub limit: u64,
}

impl SequentialSpec for BoundedTasSpec {
    type Op = ();
    type Ret = bool;
    type State = u64;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, _op: &()) -> (u64, bool) {
        (*state + 1, *state < self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::adversary::{ArrivalSchedule, ExecConfig, YieldPolicy};
    use shmem::consistency::check_linearizable;
    use shmem::executor::Executor;
    use shmem::history::{History, OpRecord, Recorder};
    use shmem::process::ProcessId;
    use std::sync::Arc;

    #[test]
    fn exactly_limit_winners_sequentially() {
        let ltas = BoundedTas::new(4);
        assert_eq!(ltas.limit(), 4);
        let mut winners = 0;
        for id in 0..10usize {
            let mut ctx = ProcessCtx::new(ProcessId::new(id), 3);
            if ltas.invoke(&mut ctx) {
                winners += 1;
            }
        }
        assert_eq!(winners, 4);
        assert!(format!("{ltas:?}").contains("BoundedTas"));
    }

    #[test]
    fn late_arrivals_after_the_doorway_closes_lose_cheaply() {
        let ltas = BoundedTas::new(1);
        for id in 0..3usize {
            let mut ctx = ProcessCtx::new(ProcessId::new(id), 1);
            ltas.invoke(&mut ctx);
        }
        // By now some loser has closed the doorway.
        let mut ctx = ProcessCtx::new(ProcessId::new(50), 1);
        let before_steps;
        {
            before_steps = ctx.stats().total();
            assert!(!ltas.invoke(&mut ctx));
        }
        // A doorway-rejected invocation costs a single register read.
        assert_eq!(ctx.stats().total() - before_steps, 1);
    }

    #[test]
    fn exactly_limit_winners_under_concurrency() {
        for seed in 0..6 {
            for limit in [1usize, 2, 5] {
                let ltas = Arc::new(BoundedTas::new(limit));
                let k = 10usize;
                let config = ExecConfig::new(seed)
                    .with_yield_policy(YieldPolicy::Probabilistic(0.15))
                    .with_arrival(ArrivalSchedule::Simultaneous);
                let outcome = Executor::new(config).run(k, {
                    let ltas = Arc::clone(&ltas);
                    move |ctx| ltas.invoke(ctx)
                });
                let winners = outcome.results().into_iter().filter(|w| *w).count();
                assert_eq!(winners, limit.min(k), "seed {seed}, limit {limit}");
            }
        }
    }

    #[test]
    fn fewer_participants_than_the_limit_all_win() {
        let ltas = Arc::new(BoundedTas::new(8));
        let outcome = Executor::new(ExecConfig::new(1)).run(3, {
            let ltas = Arc::clone(&ltas);
            move |ctx| ltas.invoke(ctx)
        });
        assert!(outcome.results().into_iter().all(|won| won));
    }

    #[test]
    fn recorded_histories_are_linearizable() {
        for seed in 0..4 {
            let limit = 3usize;
            let ltas = Arc::new(BoundedTas::new(limit));
            let recorder: Arc<Recorder<(), bool>> = Arc::new(Recorder::new());
            let outcome = Executor::new(
                ExecConfig::new(seed).with_yield_policy(YieldPolicy::Probabilistic(0.25)),
            )
            .run(8, {
                let ltas = Arc::clone(&ltas);
                let recorder = Arc::clone(&recorder);
                move |ctx| {
                    let invoke = recorder.invoke();
                    let won = ltas.invoke(ctx);
                    recorder.record(ctx.id(), (), won, invoke);
                }
            });
            assert_eq!(outcome.crashed_count(), 0);
            let history = recorder.take_history();
            check_linearizable(
                &BoundedTasSpec {
                    limit: limit as u64,
                },
                &history,
            )
            .unwrap_or_else(|violation| panic!("seed {seed}: {violation}"));
        }
    }

    #[test]
    fn the_spec_itself_behaves_as_documented() {
        let spec = BoundedTasSpec { limit: 2 };
        let history = History::new(vec![
            OpRecord {
                process: ProcessId::new(0),
                op: (),
                result: true,
                invoke: 1,
                response: 2,
            },
            OpRecord {
                process: ProcessId::new(1),
                op: (),
                result: true,
                invoke: 3,
                response: 4,
            },
            OpRecord {
                process: ProcessId::new(2),
                op: (),
                result: false,
                invoke: 5,
                response: 6,
            },
        ]);
        assert!(check_linearizable(&spec, &history).is_ok());

        // Three winners with limit 2 is not linearizable.
        let bad = History::new(vec![
            OpRecord {
                process: ProcessId::new(0),
                op: (),
                result: true,
                invoke: 1,
                response: 2,
            },
            OpRecord {
                process: ProcessId::new(1),
                op: (),
                result: true,
                invoke: 3,
                response: 4,
            },
            OpRecord {
                process: ProcessId::new(2),
                op: (),
                result: true,
                invoke: 5,
                response: 6,
            },
        ]);
        assert!(check_linearizable(&spec, &bad).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one winner")]
    fn zero_limits_are_rejected() {
        let _ = BoundedTas::new(0);
    }
}
