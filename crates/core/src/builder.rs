//! The unified construction facade for renaming objects.
//!
//! Every algorithm of the workspace used to be built through its own ad-hoc
//! constructor (`AdaptiveRenaming::new()`, `BitBatchingRenaming::new(n)`,
//! `RenamingNetwork::new(odd_even_network(n))`, …). The
//! [`RenamingBuilder`] replaces those entry points with one fluent surface
//! that selects the algorithm, the capacity, the sorting-network family and
//! the comparator engine, and returns the object behind `Arc<dyn Renaming>`
//! — or, via [`RenamingBuilder::build_long_lived`], behind
//! `Arc<dyn LongLivedRenaming>` with a [`Recycler`] layered on top.
//!
//! Obtain a builder with `<dyn Renaming>::builder()` (or
//! [`RenamingBuilder::new`]):
//!
//! ```
//! use adaptive_renaming::traits::{assert_tight_namespace, Renaming};
//! use shmem::executor::Executor;
//!
//! let builder = <dyn Renaming>::builder().seed(42);
//! let renaming = builder.build().unwrap(); // adaptive strong renaming
//! let outcome = Executor::new(builder.exec_config()).run(6, {
//!     let renaming = renaming.clone();
//!     move |ctx| renaming.acquire(ctx).unwrap()
//! });
//! assert!(assert_tight_namespace(&outcome.results()).is_ok());
//! ```

use crate::adaptive::AdaptiveRenaming;
use crate::batched::BatchedRecycler;
use crate::bit_batching::BitBatchingRenaming;
use crate::error::RenamingError;
use crate::free_list::FreeListKind;
use crate::lease::LongLivedRenaming;
use crate::linear_probe::LinearProbeRenaming;
use crate::recycler::Recycler;
use crate::renaming_network::{LockedRenamingNetwork, RenamingNetwork};
use crate::sharded::ShardedRecycler;
use crate::traits::Renaming;
use shmem::adversary::ExecConfig;
use shmem::arena::Arena;
use sortnet::family::{NetworkFamily, SortingFamily};
use std::sync::Arc;
use tas::hardware::HardwareTas;
use tas::ratrace::RatRaceTas;
use tas::two_process::TwoProcessTas;

/// The renaming algorithm a [`RenamingBuilder`] constructs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The §6 adaptive strong renaming object (unbounded, names `1..=k`).
    #[default]
    Adaptive,
    /// The §5 renaming network over a fixed sorting network (requires a
    /// capacity; strong adaptive within it).
    Network,
    /// The §4 BitBatching algorithm (requires a capacity; non-adaptive,
    /// names `1..=n`).
    BitBatching,
    /// The folklore linear-probing baseline (requires a capacity; adaptive
    /// but `Θ(k)` steps).
    LinearProbe,
}

/// The comparator-storage engine for [`Algorithm::Network`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The compiled flat wire-map + lock-free comparator-slab engine.
    #[default]
    Compiled,
    /// The legacy `RwLock<HashMap>` engine, kept for benchmark comparison.
    Locked,
}

/// The test-and-set implementation placed at comparators and name slots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ComparatorKind {
    /// Randomized register-based objects (two-process test-and-set at
    /// network comparators, RatRace at BitBatching / linear-probe slots) —
    /// the paper's model.
    #[default]
    Randomized,
    /// Hardware (atomic swap) test-and-set — the deterministic unit-cost
    /// variant of the paper's discussion section.
    Hardware,
}

/// Fluent configuration for every renaming object of the workspace.
///
/// See the [module documentation](self) for an overview and
/// `examples/name_server.rs` for the long-lived surface.
#[derive(Clone, Debug)]
pub struct RenamingBuilder {
    algorithm: Algorithm,
    capacity: Option<usize>,
    max_concurrent: Option<usize>,
    family: NetworkFamily,
    engine: EngineKind,
    comparators: ComparatorKind,
    adaptive_level: Option<usize>,
    probe_multiplier: usize,
    shards: usize,
    free_list: FreeListKind,
    lease_batch: usize,
    arena: Option<Arc<Arena>>,
    seed: u64,
}

impl Default for RenamingBuilder {
    fn default() -> Self {
        RenamingBuilder {
            algorithm: Algorithm::default(),
            capacity: None,
            max_concurrent: None,
            family: NetworkFamily::default(),
            engine: EngineKind::default(),
            comparators: ComparatorKind::default(),
            adaptive_level: None,
            probe_multiplier: 3,
            shards: 1,
            free_list: FreeListKind::default(),
            lease_batch: 8,
            arena: None,
            seed: 0,
        }
    }
}

impl dyn Renaming {
    /// Starts building a renaming object; the canonical entry point of the
    /// crate. Equivalent to [`RenamingBuilder::new`].
    pub fn builder() -> RenamingBuilder {
        RenamingBuilder::new()
    }
}

impl RenamingBuilder {
    /// Creates a builder with the default configuration: §6 adaptive strong
    /// renaming on the compiled engine with randomized comparators.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Shorthand for [`Algorithm::Adaptive`].
    pub fn adaptive(self) -> Self {
        self.algorithm(Algorithm::Adaptive)
    }

    /// Shorthand for [`Algorithm::Network`].
    pub fn network(self) -> Self {
        self.algorithm(Algorithm::Network)
    }

    /// Shorthand for [`Algorithm::BitBatching`].
    pub fn bit_batching(self) -> Self {
        self.algorithm(Algorithm::BitBatching)
    }

    /// Shorthand for [`Algorithm::LinearProbe`].
    pub fn linear_probe(self) -> Self {
        self.algorithm(Algorithm::LinearProbe)
    }

    /// Sets the namespace size of the bounded algorithms: input wires of a
    /// renaming network, name slots of BitBatching and linear probing.
    /// Rejected (at build time) by [`Algorithm::Adaptive`], which is
    /// unbounded by construction.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Sets the concurrency bound of the long-lived object produced by
    /// [`RenamingBuilder::build_long_lived`]; defaults to the capacity.
    pub fn max_concurrent(mut self, max_concurrent: usize) -> Self {
        self.max_concurrent = Some(max_concurrent);
        self
    }

    /// Selects the sorting-network family used by [`Algorithm::Network`] and
    /// [`Algorithm::Adaptive`].
    pub fn family(mut self, family: NetworkFamily) -> Self {
        self.family = family;
        self
    }

    /// Selects the comparator-storage engine ([`Algorithm::Network`] only).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the test-and-set implementation.
    pub fn comparators(mut self, comparators: ComparatorKind) -> Self {
        self.comparators = comparators;
        self
    }

    /// Shorthand for [`ComparatorKind::Hardware`].
    pub fn hardware_comparators(self) -> Self {
        self.comparators(ComparatorKind::Hardware)
    }

    /// Sets the truncation level of the §6.1 adaptive network (defaults to
    /// the maximum supported level; smaller levels build faster and suffice
    /// for small contention).
    pub fn adaptive_level(mut self, level: usize) -> Self {
        self.adaptive_level = Some(level);
        self
    }

    /// Overrides BitBatching's `3 log n` probes-per-batch constant with
    /// `multiplier · log n`.
    pub fn probe_multiplier(mut self, multiplier: usize) -> Self {
        self.probe_multiplier = multiplier;
        self
    }

    /// Shards the long-lived object produced by
    /// [`RenamingBuilder::build_long_lived`] over `shards` independent
    /// recyclers ([`ShardedRecycler`]): each shard gets its own inner
    /// one-shot object (the configured capacity is **per shard**) and
    /// `⌈max_concurrent / shards⌉` admission slots, with per-process home
    /// shards and overflow stealing. Trades the tight namespace bound for
    /// the documented loose one — see the
    /// [`sharded`](crate::sharded) module docs for when that is acceptable.
    ///
    /// `shards == 1` (the default) builds a plain tight [`Recycler`];
    /// `shards > 1` makes [`RenamingBuilder::build`] fail, since sharding
    /// only applies to the long-lived form.
    pub fn sharded(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Selects the free-list layout of the long-lived object produced by
    /// [`RenamingBuilder::build_long_lived`]: the two-level hierarchical
    /// bitmap (default, `O(1)` expected pop-minimum) or the flat scan
    /// baseline (`O(capacity / 64)`).
    pub fn free_list(mut self, kind: FreeListKind) -> Self {
        self.free_list = kind;
        self
    }

    /// Sets the release-batching factor of the long-lived object produced
    /// by [`RenamingBuilder::build_long_lived`]. The default (`8`) wraps
    /// the recycler in a [`BatchedRecycler`]: releases park in striped
    /// stashes and flush to the free list in batches of this size, paying
    /// one free-list operation per batch instead of per release — the right
    /// trade under churn, at the price of the *per-grant* tight namespace
    /// bound (names stay unique and within `max_concurrent`, but a lease
    /// may carry a name above its grant-time point contention; see the
    /// [`batched`](crate::batched) module docs). `.lease_batch(1)` skips
    /// the wrapper and restores the bare tight recycler.
    ///
    /// Ignored by [`RenamingBuilder::build`]; `0` is rejected at build
    /// time.
    pub fn lease_batch(mut self, batch: usize) -> Self {
        self.lease_batch = batch;
        self
    }

    /// Places the long-lived object's shared mutable state — free-list
    /// words, admission counters, misuse diagnostics — in the given
    /// [`Arena`] instead of private heap allocations, making the object
    /// deployable across processes when the arena uses the
    /// [`shared`](shmem::arena::ArenaBackend::Shared) backend. Size the
    /// arena generously (the recycler layers report exact footprints via
    /// [`Recycler::footprint`] / [`ShardedRecycler::footprint`]); the build
    /// panics if the arena runs out of space. Ignored by the one-shot
    /// [`RenamingBuilder::build`].
    pub fn arena(mut self, arena: &Arc<Arena>) -> Self {
        self.arena = Some(Arc::clone(arena));
        self
    }

    /// Sets the seed recorded for adversarial executions driven against the
    /// built object (see [`RenamingBuilder::exec_config`]). Construction
    /// itself is deterministic: all randomness in the paper's algorithms is
    /// drawn from the per-process context at runtime.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// An adversarial executor configuration seeded with this builder's
    /// seed, so experiment code has a single source of reproducibility.
    pub fn exec_config(&self) -> ExecConfig {
        ExecConfig::new(self.seed)
    }

    /// The configured seed.
    pub fn configured_seed(&self) -> u64 {
        self.seed
    }

    fn bounded_capacity(&self, minimum: usize) -> Result<usize, RenamingError> {
        let capacity = self.capacity.ok_or(RenamingError::InvalidConfiguration {
            reason: "this algorithm is bounded: set .capacity(n)",
        })?;
        if capacity < minimum {
            return Err(RenamingError::InvalidConfiguration {
                reason: "capacity is below the algorithm's minimum (2 for \
                         networks and BitBatching, 1 for linear probing)",
            });
        }
        Ok(capacity)
    }

    /// Builds the configured one-shot renaming object.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::InvalidConfiguration`] when the settings do
    /// not fit the selected algorithm (missing or too-small capacity, a
    /// capacity on the unbounded adaptive algorithm, the locked engine on a
    /// non-network algorithm).
    pub fn build(&self) -> Result<Arc<dyn Renaming>, RenamingError> {
        if self.shards > 1 {
            return Err(RenamingError::InvalidConfiguration {
                reason: "sharding applies to the long-lived form: use build_long_lived()",
            });
        }
        self.build_one()
    }

    /// Builds one one-shot object ignoring the sharding knob (each shard of
    /// a sharded long-lived object is one of these).
    fn build_one(&self) -> Result<Arc<dyn Renaming>, RenamingError> {
        if self.engine == EngineKind::Locked && self.algorithm != Algorithm::Network {
            return Err(RenamingError::InvalidConfiguration {
                reason: "the locked engine only applies to fixed renaming networks",
            });
        }
        match self.algorithm {
            Algorithm::Adaptive => {
                if self.capacity.is_some() {
                    return Err(RenamingError::InvalidConfiguration {
                        reason: "adaptive renaming is unbounded: drop .capacity(n) \
                                 (use .max_concurrent(n) to bound the long-lived form)",
                    });
                }
                let level = self.adaptive_level.unwrap_or(sortnet::adaptive::MAX_LEVEL);
                Ok(match self.comparators {
                    ComparatorKind::Randomized => Arc::new(
                        AdaptiveRenaming::<TwoProcessTas>::with_family(self.family, level),
                    ),
                    ComparatorKind::Hardware => Arc::new(
                        AdaptiveRenaming::<HardwareTas>::with_family(self.family, level),
                    ),
                })
            }
            Algorithm::Network => {
                let width = self.bounded_capacity(2)?;
                let schedule = self.family.schedule(width);
                Ok(match (self.engine, self.comparators) {
                    (EngineKind::Compiled, ComparatorKind::Randomized) => {
                        Arc::new(RenamingNetwork::<_, TwoProcessTas>::new(schedule))
                    }
                    (EngineKind::Compiled, ComparatorKind::Hardware) => {
                        Arc::new(RenamingNetwork::<_, HardwareTas>::new(schedule))
                    }
                    (EngineKind::Locked, ComparatorKind::Randomized) => {
                        Arc::new(LockedRenamingNetwork::<_, TwoProcessTas>::new(schedule))
                    }
                    (EngineKind::Locked, ComparatorKind::Hardware) => {
                        Arc::new(LockedRenamingNetwork::<_, HardwareTas>::new(schedule))
                    }
                })
            }
            Algorithm::BitBatching => {
                let slots = self.bounded_capacity(2)?;
                if self.probe_multiplier == 0 {
                    return Err(RenamingError::InvalidConfiguration {
                        reason: "the probe multiplier must be positive",
                    });
                }
                Ok(match self.comparators {
                    ComparatorKind::Randomized => {
                        Arc::new(BitBatchingRenaming::with_factory_and_multiplier(
                            slots,
                            RatRaceTas::new,
                            self.probe_multiplier,
                        ))
                    }
                    ComparatorKind::Hardware => {
                        Arc::new(BitBatchingRenaming::with_factory_and_multiplier(
                            slots,
                            HardwareTas::new,
                            self.probe_multiplier,
                        ))
                    }
                })
            }
            Algorithm::LinearProbe => {
                let slots = self.bounded_capacity(1)?;
                Ok(match self.comparators {
                    ComparatorKind::Randomized => Arc::new(LinearProbeRenaming::with_slots(
                        (0..slots).map(|_| RatRaceTas::new()).collect::<Vec<_>>(),
                    )),
                    ComparatorKind::Hardware => Arc::new(LinearProbeRenaming::with_slots(
                        (0..slots).map(|_| HardwareTas::new()).collect::<Vec<_>>(),
                    )),
                })
            }
        }
    }

    /// Builds the configured object and wraps it in a [`Recycler`] — or,
    /// with [`RenamingBuilder::sharded`], builds one object per shard and
    /// wraps them in a [`ShardedRecycler`] — yielding a long-lived renaming
    /// object whose leases recycle released names through the configured
    /// [`FreeListKind`]. Unless [`RenamingBuilder::lease_batch`] is set to
    /// 1, the result is additionally wrapped in a [`BatchedRecycler`] that
    /// amortizes release traffic in batches (of 8 by default).
    ///
    /// The concurrency bound is [`RenamingBuilder::max_concurrent`] if set,
    /// otherwise the capacity; a sharded object splits it evenly, giving
    /// each shard `⌈max_concurrent / shards⌉` admission slots (so the
    /// effective total bound rounds up to a multiple of the shard count).
    ///
    /// # Errors
    ///
    /// As [`RenamingBuilder::build`], plus
    /// [`RenamingError::InvalidConfiguration`] when no concurrency bound can
    /// be derived, it exceeds the (per-shard) capacity, or the shard count
    /// is zero.
    pub fn build_long_lived(&self) -> Result<Arc<dyn LongLivedRenaming>, RenamingError> {
        if self.shards == 0 {
            return Err(RenamingError::InvalidConfiguration {
                reason: "a sharded recycler needs at least one shard",
            });
        }
        if self.lease_batch == 0 {
            return Err(RenamingError::InvalidConfiguration {
                reason: "the lease batch must be at least 1 (1 disables batching)",
            });
        }
        let max_concurrent =
            self.max_concurrent
                .or(self.capacity)
                .ok_or(RenamingError::InvalidConfiguration {
                    reason: "the long-lived form needs .max_concurrent(n) (or a capacity)",
                })?;
        if max_concurrent == 0 {
            return Err(RenamingError::InvalidConfiguration {
                reason: "max_concurrent must be at least 1",
            });
        }
        let per_shard_max = max_concurrent.div_ceil(self.shards);
        let inners = (0..self.shards)
            .map(|_| self.build_one())
            .collect::<Result<Vec<_>, _>>()?;
        if let Some(capacity) = inners[0].capacity() {
            if per_shard_max > capacity {
                return Err(RenamingError::InvalidConfiguration {
                    reason: "max_concurrent exceeds the object's capacity \
                             (per shard, when sharded)",
                });
            }
        }
        let recycler: Arc<dyn LongLivedRenaming> = match (self.shards, &self.arena) {
            (1, None) => {
                let inner = inners.into_iter().next().expect("one shard");
                Arc::new(Recycler::with_free_list(
                    inner,
                    per_shard_max,
                    self.free_list,
                ))
            }
            (1, Some(arena)) => {
                let inner = inners.into_iter().next().expect("one shard");
                Arc::new(Recycler::with_free_list_in(
                    inner,
                    per_shard_max,
                    self.free_list,
                    arena,
                ))
            }
            (_, None) => Arc::new(ShardedRecycler::with_free_list(
                inners,
                per_shard_max,
                self.free_list,
            )),
            (_, Some(arena)) => Arc::new(ShardedRecycler::with_free_list_in(
                inners,
                per_shard_max,
                self.free_list,
                arena,
            )),
        };
        if self.lease_batch > 1 {
            Ok(Arc::new(BatchedRecycler::new(recycler, self.lease_batch)))
        } else {
            Ok(recycler)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::assert_tight_namespace;
    use shmem::executor::Executor;
    use shmem::process::{ProcessCtx, ProcessId};

    fn run_tight(renaming: Arc<dyn Renaming>, k: usize, seed: u64) {
        let outcome =
            Executor::new(ExecConfig::new(seed)).run(k, move |ctx| renaming.acquire(ctx).unwrap());
        assert_tight_namespace(&outcome.results()).unwrap();
    }

    #[test]
    fn every_algorithm_builds_as_a_trait_object() {
        let configs: Vec<(&str, RenamingBuilder)> = vec![
            ("adaptive", RenamingBuilder::new().adaptive()),
            ("network", RenamingBuilder::new().network().capacity(16)),
            (
                "network-locked",
                RenamingBuilder::new()
                    .network()
                    .capacity(16)
                    .engine(EngineKind::Locked),
            ),
            (
                "network-hardware",
                RenamingBuilder::new()
                    .network()
                    .capacity(16)
                    .hardware_comparators(),
            ),
            (
                "linear-probe",
                RenamingBuilder::new().linear_probe().capacity(16),
            ),
        ];
        for (label, builder) in configs {
            let renaming = builder.build().unwrap_or_else(|e| panic!("{label}: {e}"));
            run_tight(renaming, 6, 3);
        }

        // BitBatching is non-adaptive: the namespace is tight only under
        // full load, so it gets its own run at k = n.
        let bitbatching = RenamingBuilder::new()
            .bit_batching()
            .capacity(8)
            .build()
            .unwrap();
        assert_eq!(bitbatching.capacity(), Some(8));
        assert!(!bitbatching.is_adaptive());
        run_tight(bitbatching, 8, 3);
    }

    #[test]
    fn adaptive_is_the_default_and_is_unbounded() {
        let renaming = <dyn Renaming>::builder().build().unwrap();
        assert_eq!(renaming.capacity(), None);
        assert!(renaming.is_adaptive());
    }

    #[test]
    fn families_and_levels_are_selectable() {
        let bitonic = <dyn Renaming>::builder()
            .network()
            .capacity(8)
            .family(NetworkFamily::Bitonic)
            .build()
            .unwrap();
        assert_eq!(bitonic.capacity(), Some(8));
        run_tight(bitonic, 5, 9);

        let small = <dyn Renaming>::builder().adaptive_level(3).build().unwrap();
        run_tight(small, 6, 11);
    }

    #[test]
    fn misconfigurations_are_reported() {
        let missing = <dyn Renaming>::builder().network().build();
        assert!(matches!(
            missing,
            Err(RenamingError::InvalidConfiguration { .. })
        ));
        let adaptive_capacity = <dyn Renaming>::builder().capacity(8).build();
        assert!(adaptive_capacity.is_err());
        let locked_adaptive = <dyn Renaming>::builder().engine(EngineKind::Locked).build();
        assert!(locked_adaptive.is_err());
        let tiny = <dyn Renaming>::builder().bit_batching().capacity(1).build();
        assert!(tiny.is_err());
        let zero_mult = <dyn Renaming>::builder()
            .bit_batching()
            .capacity(8)
            .probe_multiplier(0)
            .build();
        assert!(zero_mult.is_err());
        let no_bound = <dyn Renaming>::builder().build_long_lived();
        assert!(no_bound.is_err());
        let excess = <dyn Renaming>::builder()
            .linear_probe()
            .capacity(4)
            .max_concurrent(9)
            .build_long_lived();
        assert!(excess.is_err());
        let sharded_one_shot = <dyn Renaming>::builder()
            .network()
            .capacity(8)
            .sharded(2)
            .build();
        assert!(
            sharded_one_shot.is_err(),
            "sharding only applies to the long-lived form"
        );
        let zero_shards = <dyn Renaming>::builder()
            .network()
            .capacity(8)
            .sharded(0)
            .build_long_lived();
        assert!(zero_shards.is_err());
        let per_shard_excess = <dyn Renaming>::builder()
            .network()
            .capacity(4)
            .sharded(2)
            .max_concurrent(12) // 6 per shard > the per-shard capacity of 4
            .build_long_lived();
        assert!(per_shard_excess.is_err());
        let zero_batch = <dyn Renaming>::builder()
            .network()
            .capacity(8)
            .lease_batch(0)
            .build_long_lived();
        assert!(zero_batch.is_err());
    }

    #[test]
    fn lease_batching_is_the_long_lived_default_and_is_disableable() {
        // The default long-lived object batches releases: after a
        // lease/release round trip the name is parked, not yet flushed, and
        // the next lease recycles it from the stash.
        let batched = <dyn Renaming>::builder()
            .network()
            .capacity(32)
            .max_concurrent(4)
            .build_long_lived()
            .unwrap();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 13);
        let name = batched.lease_raw(&mut ctx).unwrap();
        batched.release_raw(name);
        assert_eq!(batched.live_leases(), 0);
        assert_eq!(batched.lease_raw(&mut ctx).unwrap(), name);
        batched.release_raw(name);

        // .lease_batch(1) restores the bare tight recycler: a release goes
        // straight to the free list, so the free-list pop serves the next
        // lease and live accounting matches the recycler's.
        let tight = <dyn Renaming>::builder()
            .network()
            .capacity(32)
            .max_concurrent(4)
            .lease_batch(1)
            .build_long_lived()
            .unwrap();
        let first = tight.lease_raw(&mut ctx).unwrap();
        assert_eq!(first, 1);
        tight.release_raw(first);
        assert_eq!(tight.lease_raw(&mut ctx).unwrap(), 1);
    }

    #[test]
    fn long_lived_builds_lease_and_recycle() {
        let object = <dyn Renaming>::builder()
            .network()
            .capacity(32)
            .max_concurrent(4)
            .build_long_lived()
            .unwrap();
        assert_eq!(object.max_concurrent(), Some(4));
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 2);
        for _ in 0..8 {
            let lease = Arc::clone(&object).lease(&mut ctx).unwrap();
            assert_eq!(lease.name(), 1);
        }
        assert_eq!(object.live_leases(), 0);
    }

    #[test]
    fn long_lived_adaptive_derives_its_bound_from_max_concurrent() {
        let object = <dyn Renaming>::builder()
            .adaptive()
            .adaptive_level(3)
            .max_concurrent(3)
            .build_long_lived()
            .unwrap();
        let mut ctx = ProcessCtx::new(ProcessId::new(5), 8);
        let a = Arc::clone(&object).lease(&mut ctx).unwrap();
        let b = Arc::clone(&object).lease(&mut ctx).unwrap();
        assert!(a.name() <= 3 && b.name() <= 3);
        a.release(&mut ctx);
        b.release(&mut ctx);
        assert_eq!(ctx.stats().releases, 2);
    }

    #[test]
    fn sharded_and_free_list_knobs_build_long_lived_objects() {
        use crate::free_list::FreeListKind;

        // Both free-list layouts serve churn identically at this scale.
        for kind in [FreeListKind::Flat, FreeListKind::Hierarchical] {
            let object = <dyn Renaming>::builder()
                .network()
                .capacity(16)
                .max_concurrent(4)
                .free_list(kind)
                .build_long_lived()
                .unwrap();
            let mut ctx = ProcessCtx::new(ProcessId::new(0), 6);
            for _ in 0..5 {
                let lease = Arc::clone(&object).lease(&mut ctx).unwrap();
                assert_eq!(lease.name(), 1, "{kind:?}");
            }
        }

        // A 2-sharded object homes processes by identifier and splits the
        // concurrency bound: names come from disjoint per-shard ranges.
        let sharded = <dyn Renaming>::builder()
            .network()
            .capacity(8)
            .sharded(2)
            .max_concurrent(4)
            .build_long_lived()
            .unwrap();
        assert_eq!(sharded.max_concurrent(), Some(4));
        let mut p0 = ProcessCtx::new(ProcessId::new(0), 1);
        let mut p1 = ProcessCtx::new(ProcessId::new(1), 1);
        let a = Arc::clone(&sharded).lease(&mut p0).unwrap();
        let b = Arc::clone(&sharded).lease(&mut p1).unwrap();
        assert_eq!(a.name(), 1);
        assert_eq!(b.name(), 9, "shard 1 owns names 9..=16");
        assert_eq!(sharded.live_leases(), 2);
        drop(a);
        drop(b);

        // The batch surface works through the trait object too.
        let batch = Arc::clone(&sharded).lease_many(&mut p0, 3).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(sharded.live_leases(), 3);
        drop(batch);
        assert_eq!(sharded.live_leases(), 0);
    }

    #[test]
    fn arena_backed_long_lived_objects_share_one_backing_store() {
        // A builder pointed at an arena places every layer's hot words
        // there; the object behaves identically to the heap build.
        let arena = Arena::heap(1 << 16);
        for shards in [1usize, 2] {
            let before = arena.used();
            let object = <dyn Renaming>::builder()
                .network()
                .capacity(8)
                .sharded(shards)
                .max_concurrent(4)
                .arena(&arena)
                .build_long_lived()
                .unwrap();
            assert!(
                arena.used() > before,
                "the build must consume arena space ({shards} shards)"
            );
            let mut ctx = ProcessCtx::new(ProcessId::new(0), 21);
            for _ in 0..6 {
                let lease = Arc::clone(&object).lease(&mut ctx).unwrap();
                assert_eq!(lease.name(), 1, "{shards} shards");
            }
            assert_eq!(object.live_leases(), 0);
        }
    }

    #[test]
    fn the_seed_threads_into_exec_config() {
        let builder = RenamingBuilder::new().seed(77);
        assert_eq!(builder.configured_seed(), 77);
        assert_eq!(builder.exec_config().seed, 77);
    }
}
