//! The folklore linear-probing renaming baseline.
//!
//! The simplest test-and-set based renaming algorithm (§1, \[4, 11\]): a
//! process competes in test-and-set objects of increasing index until it wins
//! one, and takes that object's index as its name. The namespace is tight and
//! adaptive, but the step complexity is `Θ(k)` test-and-set operations per
//! process — the baseline the paper's logarithmic algorithms are measured
//! against (Experiments E5, E7).

use crate::error::RenamingError;
use crate::traits::Renaming;
use shmem::process::ProcessCtx;
use std::fmt;
use tas::ratrace::RatRaceTas;
use tas::TestAndSet;

/// Linear-probing adaptive renaming over at most `capacity` names.
///
/// # Example
///
/// ```
/// use adaptive_renaming::traits::{assert_tight_namespace, Renaming};
/// use shmem::adversary::ExecConfig;
/// use shmem::executor::Executor;
///
/// let renaming = <dyn Renaming>::builder()
///     .linear_probe()
///     .capacity(16)
///     .build()
///     .unwrap();
/// let outcome = Executor::new(ExecConfig::new(1)).run(5, {
///     let renaming = renaming.clone();
///     move |ctx| renaming.acquire(ctx).expect("capacity not exceeded")
/// });
/// assert!(assert_tight_namespace(&outcome.results()).is_ok());
/// ```
pub struct LinearProbeRenaming<T: TestAndSet = RatRaceTas> {
    slots: Vec<T>,
}

impl<T: TestAndSet> LinearProbeRenaming<T> {
    /// Creates the baseline over the given test-and-set slots.
    ///
    /// # Panics
    ///
    /// Panics if no slots are supplied.
    pub fn with_slots(slots: Vec<T>) -> Self {
        assert!(!slots.is_empty(), "linear probing needs at least one slot");
        LinearProbeRenaming { slots }
    }

    /// The number of names available.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Acquires a name and reports how many test-and-set objects were probed.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::CapacityExceeded`] when every slot is taken.
    pub fn acquire_with_probes(
        &self,
        ctx: &mut ProcessCtx,
    ) -> Result<(usize, usize), RenamingError> {
        for (index, slot) in self.slots.iter().enumerate() {
            if slot.test_and_set(ctx) {
                return Ok((index + 1, index + 1));
            }
        }
        Err(RenamingError::CapacityExceeded {
            capacity: self.slots.len(),
        })
    }
}

impl<T: TestAndSet> fmt::Debug for LinearProbeRenaming<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinearProbeRenaming")
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl<T: TestAndSet> Renaming for LinearProbeRenaming<T> {
    fn acquire(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        self.acquire_with_probes(ctx).map(|(name, _)| name)
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.slots.len())
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::assert_tight_namespace;
    use shmem::adversary::{ExecConfig, YieldPolicy};
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use std::sync::Arc;
    use tas::hardware::HardwareTas;

    #[test]
    fn sequential_processes_get_consecutive_names() {
        let renaming = LinearProbeRenaming::with_slots((0..8).map(|_| RatRaceTas::new()).collect());
        for expected in 1..=8usize {
            let mut ctx = ProcessCtx::new(ProcessId::new(expected), 1);
            assert_eq!(renaming.acquire(&mut ctx).unwrap(), expected);
        }
        let mut extra = ProcessCtx::new(ProcessId::new(99), 1);
        assert!(matches!(
            renaming.acquire(&mut extra),
            Err(RenamingError::CapacityExceeded { capacity: 8 })
        ));
    }

    #[test]
    fn concurrent_processes_get_a_tight_namespace() {
        for seed in 0..5 {
            let renaming = Arc::new(LinearProbeRenaming::with_slots(
                (0..32).map(|_| RatRaceTas::new()).collect(),
            ));
            let config = ExecConfig::new(seed).with_yield_policy(YieldPolicy::Probabilistic(0.2));
            let outcome = Executor::new(config).run(12, {
                let renaming = Arc::clone(&renaming);
                move |ctx| renaming.acquire(ctx).unwrap()
            });
            assert_tight_namespace(&outcome.results()).unwrap();
        }
    }

    #[test]
    fn probe_count_equals_the_acquired_name() {
        let renaming = LinearProbeRenaming::with_slots(
            (0..10).map(|_| HardwareTas::new()).collect::<Vec<_>>(),
        );
        for expected in 1..=10usize {
            let mut ctx = ProcessCtx::new(ProcessId::new(expected), 0);
            let (name, probes) = renaming.acquire_with_probes(&mut ctx).unwrap();
            assert_eq!(name, expected);
            assert_eq!(probes, expected, "linear probing probes k slots for name k");
        }
    }

    #[test]
    fn metadata_is_reported() {
        let renaming = LinearProbeRenaming::with_slots((0..4).map(|_| RatRaceTas::new()).collect());
        assert_eq!(renaming.capacity(), Some(4));
        assert!(renaming.is_adaptive());
        assert_eq!(renaming.len(), 4);
        assert!(!renaming.is_empty());
        assert!(format!("{renaming:?}").contains("LinearProbeRenaming"));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_slot_vectors_are_rejected() {
        let _ = LinearProbeRenaming::with_slots(Vec::<HardwareTas>::new());
    }
}
