//! Error types for the renaming objects.

use std::error::Error;
use std::fmt;

/// An error returned by a renaming object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RenamingError {
    /// More processes requested names than the object was built for.
    ///
    /// Fixed-capacity objects (BitBatching with `n` slots, linear probing,
    /// bounded renaming networks) can only serve as many participants as
    /// their capacity; the adaptive algorithms never return this error.
    CapacityExceeded {
        /// The maximum number of names the object can hand out.
        capacity: usize,
    },
    /// The process's initial identifier does not fit the object's input
    /// namespace (a renaming network has one input port per possible initial
    /// name).
    IdentifierOutOfRange {
        /// The offending identifier.
        identifier: usize,
        /// The exclusive upper bound on accepted identifiers.
        namespace: usize,
    },
    /// A [`RenamingBuilder`](crate::builder::RenamingBuilder) configuration
    /// does not describe a constructible object (missing capacity, an engine
    /// that does not apply to the selected algorithm, …).
    InvalidConfiguration {
        /// What is wrong with the configuration.
        reason: &'static str,
    },
}

impl fmt::Display for RenamingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenamingError::CapacityExceeded { capacity } => {
                write!(f, "renaming capacity of {capacity} names exhausted")
            }
            RenamingError::IdentifierOutOfRange {
                identifier,
                namespace,
            } => write!(
                f,
                "initial identifier {identifier} outside the supported namespace 0..{namespace}"
            ),
            RenamingError::InvalidConfiguration { reason } => {
                write!(f, "invalid renaming configuration: {reason}")
            }
        }
    }
}

impl Error for RenamingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let capacity = RenamingError::CapacityExceeded { capacity: 8 };
        assert!(capacity.to_string().contains('8'));
        let range = RenamingError::IdentifierOutOfRange {
            identifier: 99,
            namespace: 16,
        };
        assert!(range.to_string().contains("99"));
        assert!(range.to_string().contains("16"));
        let config = RenamingError::InvalidConfiguration {
            reason: "missing capacity",
        };
        assert!(config.to_string().contains("missing capacity"));
    }

    #[test]
    fn errors_are_comparable_and_copyable() {
        let a = RenamingError::CapacityExceeded { capacity: 4 };
        let b = a;
        assert_eq!(a, b);
        assert_ne!(
            a,
            RenamingError::IdentifierOutOfRange {
                identifier: 0,
                namespace: 4
            }
        );
    }
}
