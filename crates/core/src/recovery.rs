//! Crash-consistent restart recovery for arena-resident lease state.
//!
//! A fleet of processes serving names out of a file-backed
//! [`shmem::arena::Arena`] can be SIGKILLed wholesale at any instant. The
//! arena's words survive on disk exactly as the kill left them; what a
//! fresh attacher inherits is a namespace mid-flight: slots held by dead
//! owners, slots torn between claim and owner publication, and free-list
//! summary flags that lag their data words (a kill between a push's data
//! `fetch_or` and its summary ensure). [`recover`] reconciles all of it —
//! the escrow shape from the paper's lineage applies directly: every
//! per-process obligation is reconstructible by a later process that never
//! spoke to the dead one, because the protocol state (generation-stamped
//! slot words, monotone summary bits) is self-describing.
//!
//! # The scan
//!
//! 1. **Arbitrate.** [`RobustLeaseTable::claim_recovery`] CASes the
//!    table's recovery epoch upward; exactly one caller wins per epoch.
//!    Losers return immediately ([`RecoveryReport::won`] false) — recovery
//!    is idempotent, so there is nothing to wait for.
//! 2. **Gate admissions.** While the scan runs, acquirers that find the
//!    table exhausted back off (bounded) instead of failing: the capacity
//!    they are missing is exactly what the scan is about to free.
//! 3. **Repair free-list summaries.** Summary flags are monotone, so
//!    repair is re-derive-and-re-flag ([`FreeList::repair_summary`]) —
//!    never a clear, so it cannot race pushers.
//! 4. **Sweep the table.** Every held slot's owner tag is judged: torn
//!    slots (owner tag 0) are quarantined, dead owners' slots get the same
//!    exactly-once `HELD(g) → FREE(g)` CAS a release would perform. With
//!    `presume_all_dead` (the restart signature: no registered survivor)
//!    every non-torn held slot is reclaimed unconditionally.
//!
//! Idempotence — `recover ∘ recover = recover` on the observable state
//! ([`RobustLeaseTable::state_snapshot`]) — is pinned by proptests in
//! `tests/chaos_recovery.rs` and model-checked by the `recover_race_2p`
//! scenario in `mcheck`.

use crate::free_list::FreeList;
use crate::robust::{self, RobustLeaseTable, TagStatus};
use shmem::process::ProcessCtx;

/// What one [`recover`] call did (all counts zero unless it
/// [won](RecoveryReport::won) the epoch).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether this caller won the epoch CAS and ran the scan.
    pub won: bool,
    /// The epoch claimed (or already held by a previous recovery).
    pub epoch: u64,
    /// Names reclaimed from dead owners by the sweep.
    pub reclaimed: usize,
    /// Torn slots newly parked on the quarantine list.
    pub quarantined: usize,
    /// Free-list summary flags re-derived from data words.
    pub summary_repairs: usize,
    /// Distinct dead registered pids encountered (postmortem candidates).
    pub dead_pids: Vec<u32>,
}

/// Recovers `table` (and the free lists backing any recyclers layered
/// over it) after attaching to an arena whose previous fleet may have died —
/// the backend-generic core. `epoch` arbitrates concurrent recoverers
/// (file arenas pass the attach epoch; see [`recover`]); `is_dead_pid`
/// judges a registered owner's pid; `presume_all_dead` short-circuits the
/// judgment for whole-fleet restarts, where *every* prior owner — raw
/// tags included — is known gone.
///
/// Deterministic given its inputs (no OS probes of its own), so the
/// model checker drives it directly.
pub fn recover_with(
    ctx: &mut ProcessCtx,
    table: &RobustLeaseTable,
    lists: &[&FreeList],
    epoch: u64,
    mut is_dead_pid: impl FnMut(u32) -> bool,
    presume_all_dead: bool,
) -> RecoveryReport {
    let timer = obs::start();
    let mut report = RecoveryReport {
        epoch,
        ..RecoveryReport::default()
    };
    if !table.claim_recovery(ctx, epoch) {
        report.epoch = table.last_recovered_epoch();
        return report;
    }
    report.won = true;
    obs::count(obs::Metric::RecoverRuns);

    table.hold_admissions(ctx);
    report.summary_repairs = lists.iter().map(|list| list.repair_summary()).sum();

    for (index, slot) in table.slot_registers().iter().enumerate() {
        let name = index + 1;
        let word = slot.read(ctx);
        if !robust::is_held(word) {
            continue;
        }
        let tag = robust::owner(word);
        if tag == 0 {
            // Torn: claimed but no owner published. Indeterminate — park it
            // for the next sweep instead of guessing.
            if table.quarantine_name(ctx, name) {
                report.quarantined += 1;
            }
            continue;
        }
        let dead = presume_all_dead
            || match table.tag_status(tag) {
                TagStatus::Raw => false,
                TagStatus::Stale => true,
                TagStatus::Registered(pid) => {
                    let dead = is_dead_pid(pid);
                    if dead && !report.dead_pids.contains(&pid) {
                        report.dead_pids.push(pid);
                    }
                    dead
                }
            };
        if dead
            && slot
                .compare_and_swap(ctx, word, robust::pack_free(robust::generation(word)))
                .is_ok()
        {
            table.note_transition(ctx);
            report.reclaimed += 1;
            obs::count(obs::Metric::RecoverReclaimed);
            obs::event(obs::EventKind::Recovered, name as u64, tag as u64);
        }
    }

    table.release_admissions(ctx);
    obs::add(
        obs::Metric::RecoverSummaryRepairs,
        report.summary_repairs as u64,
    );
    obs::finish(timer, obs::Metric::RecoverNs);
    report
}

/// Recovers `table` after attaching by path — the OS-facing entry the
/// chaos harness and restartable deployments call before serving.
///
/// * The epoch is the arena's attach epoch
///   ([`shmem::arena::Arena::attach_epoch`]) when the table lives in a
///   file-backed arena, else one past the table's last recovered epoch —
///   so every fresh attach is entitled to one recovery run, and two
///   attachers racing the *same* epoch resolve to one winner.
/// * Whole-fleet restarts are self-detected: if no registered pid probes
///   alive ([`RobustLeaseTable::no_registered_survivors`]), every held
///   slot's owner is presumed dead, raw tags included. Otherwise only
///   provably dead owners (stale registrations, dead registered pids) are
///   reclaimed — attaching to a *live* fleet recovers nothing it
///   shouldn't.
/// * Every dead registered pid is reported to
///   [`obs::postmortem::notify_dead`] (whether or not it still held
///   leases), dumping its flight-recorder tail if one is installed.
#[cfg(all(unix, not(miri)))]
pub fn recover(
    ctx: &mut ProcessCtx,
    table: &RobustLeaseTable,
    lists: &[&FreeList],
) -> RecoveryReport {
    let epoch = table
        .arena()
        .attach_epoch()
        .unwrap_or_else(|| table.last_recovered_epoch() + 1);
    let presume_all_dead = table.no_registered_survivors();
    let mut report = recover_with(
        ctx,
        table,
        lists,
        epoch,
        |pid| !shmem::arena::os_process_alive(pid),
        presume_all_dead,
    );
    if report.won {
        // Postmortems for every dead registration, not only those that
        // still held leases — a process that crashed between release and
        // exit still has a tail worth dumping.
        for registration in table.registrations() {
            let pid = registration.pid();
            if !shmem::arena::os_process_alive(pid) && !report.dead_pids.contains(&pid) {
                report.dead_pids.push(pid);
            }
        }
        for &pid in &report.dead_pids {
            obs::postmortem::notify_dead(pid);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::free_list::{FreeList, FreeListKind};
    use shmem::process::ProcessId;

    fn ctx(id: usize) -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(id), 23)
    }

    #[test]
    fn recovery_reclaims_presumed_dead_owners_and_wins_once_per_epoch() {
        let table = RobustLeaseTable::with_capacity(4);
        let mut ctx = ctx(0);
        let registration = table.register_process(4242).unwrap();
        let a = table.acquire(&mut ctx, registration.tag()).unwrap();
        let b = table.acquire(&mut ctx, registration.tag()).unwrap();

        let report = recover_with(&mut ctx, &table, &[], 1, |_| true, true);
        assert!(report.won);
        assert_eq!(report.reclaimed, 2);
        assert_eq!(table.holder(a), None);
        assert_eq!(table.holder(b), None);
        assert!(
            !table.admissions_gated(),
            "the gate is lowered on the way out"
        );

        // Same epoch again: the CAS is already claimed — nothing runs.
        let again = recover_with(&mut ctx, &table, &[], 1, |_| true, true);
        assert!(!again.won);
        assert_eq!(again.reclaimed, 0);
    }

    #[test]
    fn recovery_is_idempotent_on_the_observable_state() {
        let table = RobustLeaseTable::with_capacity(8);
        let mut ctx = ctx(0);
        let registration = table.register_process(77).unwrap();
        for _ in 0..3 {
            table.acquire(&mut ctx, registration.tag()).unwrap();
        }
        table.inject_torn_slot(&mut ctx, 5);

        let first = recover_with(&mut ctx, &table, &[], 1, |_| true, true);
        assert!(first.won);
        assert_eq!(first.quarantined, 1);
        let snapshot = table.state_snapshot();

        // A later epoch wins again but finds nothing left to change.
        let second = recover_with(&mut ctx, &table, &[], 2, |_| true, true);
        assert!(second.won);
        assert_eq!(second.reclaimed, 0);
        assert_eq!(second.quarantined, 0, "quarantining is idempotent");
        assert_eq!(table.state_snapshot(), snapshot, "byte-identical state");

        // The quarantined torn slot is repaired by the next sweep-style
        // drain, after which the name is grantable exactly once.
        assert_eq!(table.drain_quarantine(&mut ctx), 1);
        assert_eq!(table.quarantined(), 0);
        assert_eq!(table.acquire(&mut ctx, registration.tag()).unwrap(), 1);
    }

    #[test]
    fn live_owners_survive_a_non_restart_recovery() {
        let table = RobustLeaseTable::with_capacity(4);
        let mut ctx = ctx(0);
        let live = table.register_process(100).unwrap();
        let dead = table.register_process(200).unwrap();
        let live_name = table.acquire(&mut ctx, live.tag()).unwrap();
        let dead_name = table.acquire(&mut ctx, dead.tag()).unwrap();
        // A raw in-process lease is never provably dead.
        let raw_name = table.acquire(&mut ctx, 7).unwrap();

        let report = recover_with(&mut ctx, &table, &[], 1, |pid| pid == 200, false);
        assert!(report.won);
        assert_eq!(report.reclaimed, 1);
        assert_eq!(report.dead_pids, vec![200]);
        assert_eq!(table.holder(live_name), Some(live.tag()));
        assert_eq!(table.holder(dead_name), None);
        assert_eq!(table.holder(raw_name), Some(7));
    }

    #[test]
    fn recovery_repairs_free_list_summaries() {
        let list = FreeList::with_kind(256, FreeListKind::Hierarchical);
        // A kill between a push's data fetch_or and its summary ensure
        // leaves the data bit set behind an unflagged summary word.
        assert!(list.inject_torn_push(130));
        assert_eq!(list.pop(), None, "the torn push is invisible to pops");

        let table = RobustLeaseTable::with_capacity(2);
        let mut ctx = ctx(0);
        let report = recover_with(&mut ctx, &table, &[&list], 1, |_| true, true);
        assert_eq!(report.summary_repairs, 1);
        assert_eq!(list.pop(), Some(130), "the repaired name is findable");
    }
}
