//! The BitBatching non-adaptive strong renaming algorithm (§4).
//!
//! `n` processes share a vector of `n` test-and-set objects, partitioned into
//! batches of geometrically decreasing size: the first half, the next
//! quarter, and so on, down to a final batch of `Θ(log n)` objects. In the
//! first stage a process performs `3 log n` random probes in each batch in
//! turn (competing in *every* object of the final batch), stopping as soon as
//! it wins an object; its name is the index of the object it won. With high
//! probability every process terminates during this stage after `O(log² n)`
//! test-and-set probes (Lemma 1). The second stage — a left-to-right sweep of
//! the whole vector — exists only to guarantee termination in the
//! vanishing-probability case where the first stage fails.

use crate::comparator_slab::ComparatorSlab;
use crate::error::RenamingError;
use crate::traits::Renaming;
use shmem::process::ProcessCtx;
use std::fmt;
use std::ops::Range;
use tas::ratrace::RatRaceTas;
use tas::TestAndSet;

/// Diagnostics of one acquisition, used by tests and experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitBatchingReport {
    /// The name acquired (1-based).
    pub name: usize,
    /// Total test-and-set objects the process competed in.
    pub probes: usize,
    /// Index of the batch in which the process won (0-based), if it won
    /// during the first stage.
    pub winning_batch: Option<usize>,
    /// Whether the process had to enter the second (sequential sweep) stage.
    pub entered_second_stage: bool,
}

/// The §4 BitBatching strong renaming object over `n` names.
///
/// The object is generic in the underlying test-and-set implementation; the
/// default is the adaptive [`RatRaceTas`], matching the paper's use of
/// RatRace \[12\]. [`BitBatchingRenaming::with_slots`] allows swapping in any
/// other [`TestAndSet`] (for instance the hardware test-and-set for the
/// unit-cost measure).
///
/// The name vector is a lazily initialized [`ComparatorSlab`]: constructing
/// the object over `n` names allocates `n` empty cells, and a test-and-set
/// object materializes only when some process first probes its slot
/// (observable through [`BitBatchingRenaming::allocated_slots`]). With
/// `k ≪ n` participants probing `O(log² n)` slots each, most of the vector
/// is never built — the same lazy-slab principle the renaming-network engine
/// uses for its comparators.
///
/// # Example
///
/// ```
/// use adaptive_renaming::traits::{assert_tight_namespace, Renaming};
/// use shmem::adversary::ExecConfig;
/// use shmem::executor::Executor;
///
/// let renaming = <dyn Renaming>::builder()
///     .bit_batching()
///     .capacity(8)
///     .build()
///     .unwrap();
/// let outcome = Executor::new(ExecConfig::new(3)).run(8, {
///     let renaming = renaming.clone();
///     move |ctx| renaming.acquire(ctx).expect("8 slots for 8 processes")
/// });
/// assert!(assert_tight_namespace(&outcome.results()).is_ok());
/// ```
pub struct BitBatchingRenaming<T: TestAndSet = RatRaceTas> {
    /// One lazily initialized cell per name.
    slots: ComparatorSlab<T>,
    /// Builds a slot's test-and-set on first probe. `None` only when the
    /// object was constructed from pre-built slots, in which case every cell
    /// is already initialized.
    factory: Option<Box<dyn Fn() -> T + Send + Sync>>,
    batches: Vec<Range<usize>>,
    trials_per_batch: usize,
}

impl<T: TestAndSet> BitBatchingRenaming<T> {
    /// Creates the object over `n` lazily initialized names; `factory` builds
    /// a slot's test-and-set when some process first probes it.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn with_factory<F>(n: usize, factory: F) -> Self
    where
        F: Fn() -> T + Send + Sync + 'static,
    {
        Self::with_factory_and_multiplier(n, factory, 3)
    }

    /// Like [`BitBatchingRenaming::with_factory`], but overriding the
    /// paper's `3 log n` probes-per-batch constant with `multiplier · log n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `multiplier` is zero.
    pub fn with_factory_and_multiplier<F>(n: usize, factory: F, multiplier: usize) -> Self
    where
        F: Fn() -> T + Send + Sync + 'static,
    {
        Self::from_parts(ComparatorSlab::new(n), Some(Box::new(factory)), multiplier)
    }

    /// Creates the object over the given vector of pre-built test-and-set
    /// objects (one per name).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 slots are supplied.
    pub fn with_slots(slots: Vec<T>) -> Self {
        Self::with_slots_and_multiplier(slots, 3)
    }

    /// Like [`BitBatchingRenaming::with_slots`], but overriding the paper's
    /// `3 log n` probes-per-batch constant with `multiplier · log n`. Used by
    /// the ablation experiment on the sampling budget.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 slots are supplied or `multiplier` is zero.
    pub fn with_slots_and_multiplier(slots: Vec<T>, multiplier: usize) -> Self {
        Self::from_parts(ComparatorSlab::from_values(slots), None, multiplier)
    }

    fn from_parts(
        slots: ComparatorSlab<T>,
        factory: Option<Box<dyn Fn() -> T + Send + Sync>>,
        multiplier: usize,
    ) -> Self {
        let n = slots.len();
        assert!(n >= 2, "BitBatching needs at least two names");
        assert!(multiplier >= 1, "the probe multiplier must be positive");
        let log_n = (n as f64).log2().ceil().max(1.0) as usize;
        BitBatchingRenaming {
            slots,
            factory,
            batches: Self::batch_layout(n),
            trials_per_batch: multiplier * log_n,
        }
    }

    /// The test-and-set of one slot, created on first probe.
    fn slot(&self, index: usize) -> &T {
        self.slots.get_with(index, || {
            let factory = self
                .factory
                .as_ref()
                .expect("pre-built slots are fully initialized at construction");
            factory()
        })
    }

    /// Number of slot objects actually materialized so far (harness
    /// inspection; O(n)).
    pub fn allocated_slots(&self) -> usize {
        self.slots.allocated()
    }

    /// The batch layout for a vector of `n` objects: the first half, the next
    /// quarter, …, with a final batch of between `log n` and `2 log n`
    /// objects (Figure 1).
    pub fn batch_layout(n: usize) -> Vec<Range<usize>> {
        let log_n = (n as f64).log2().max(1.0);
        let ell = ((n as f64 / log_n).log2().floor() as usize).max(1);
        let mut batches = Vec::with_capacity(ell);
        let mut start = 0usize;
        for i in 1..ell {
            let end = n - n / (1usize << i);
            if end > start {
                batches.push(start..end);
                start = end;
            }
        }
        batches.push(start..n);
        batches
    }

    /// The number of names (and test-and-set objects).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the object has no slots (never true: construction requires 2).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The batch boundaries used by the first stage.
    pub fn batches(&self) -> &[Range<usize>] {
        &self.batches
    }

    /// The number of random probes performed in each non-final batch.
    pub fn trials_per_batch(&self) -> usize {
        self.trials_per_batch
    }

    /// Acquires a name and returns detailed diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`RenamingError::CapacityExceeded`] if every object is already
    /// won (more than `n` participants).
    pub fn acquire_with_report(
        &self,
        ctx: &mut ProcessCtx,
    ) -> Result<BitBatchingReport, RenamingError> {
        let mut probes = 0usize;

        // Stage one: random probes per batch; every object of the last batch.
        let last_batch = self.batches.len() - 1;
        for (batch_index, batch) in self.batches.iter().enumerate() {
            if batch_index < last_batch {
                for _ in 0..self.trials_per_batch {
                    let slot = batch.start + ctx.random_index(batch.len());
                    probes += 1;
                    if self.slot(slot).test_and_set(ctx) {
                        return Ok(BitBatchingReport {
                            name: slot + 1,
                            probes,
                            winning_batch: Some(batch_index),
                            entered_second_stage: false,
                        });
                    }
                }
            } else {
                for slot in batch.clone() {
                    probes += 1;
                    if self.slot(slot).test_and_set(ctx) {
                        return Ok(BitBatchingReport {
                            name: slot + 1,
                            probes,
                            winning_batch: Some(batch_index),
                            entered_second_stage: false,
                        });
                    }
                }
            }
        }

        // Stage two: sequential sweep (reached with vanishing probability).
        for slot in 0..self.slots.len() {
            probes += 1;
            if self.slot(slot).test_and_set(ctx) {
                return Ok(BitBatchingReport {
                    name: slot + 1,
                    probes,
                    winning_batch: None,
                    entered_second_stage: true,
                });
            }
        }
        Err(RenamingError::CapacityExceeded {
            capacity: self.slots.len(),
        })
    }
}

impl<T: TestAndSet> fmt::Debug for BitBatchingRenaming<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BitBatchingRenaming")
            .field("names", &self.slots.len())
            .field("allocated_slots", &self.allocated_slots())
            .field("batches", &self.batches.len())
            .field("trials_per_batch", &self.trials_per_batch)
            .finish()
    }
}

impl<T: TestAndSet> Renaming for BitBatchingRenaming<T> {
    fn acquire(&self, ctx: &mut ProcessCtx) -> Result<usize, RenamingError> {
        self.acquire_with_report(ctx).map(|report| report.name)
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.slots.len())
    }

    fn is_adaptive(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::assert_tight_namespace;
    use shmem::adversary::{ArrivalSchedule, CrashPlan, ExecConfig, YieldPolicy};
    use shmem::executor::Executor;
    use shmem::process::ProcessId;
    use std::sync::Arc;
    use tas::hardware::HardwareTas;

    #[test]
    fn batch_layout_halves_until_a_logarithmic_tail() {
        let batches = BitBatchingRenaming::<RatRaceTas>::batch_layout(64);
        // 64 names, log = 6, ell = floor(log2(64/6)) = 3 batches.
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0], 0..32);
        assert_eq!(batches[1], 32..48);
        assert_eq!(batches[2], 48..64);
        // The batches tile the whole vector.
        let covered: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(covered, 64);
    }

    #[test]
    fn batch_layout_covers_the_vector_for_many_sizes() {
        for n in [2usize, 3, 5, 8, 16, 31, 100, 256, 1000] {
            let batches = BitBatchingRenaming::<RatRaceTas>::batch_layout(n);
            assert_eq!(batches.first().unwrap().start, 0, "n={n}");
            assert_eq!(batches.last().unwrap().end, n, "n={n}");
            for pair in batches.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "n={n}: batches must tile");
            }
            // The final batch is at least logarithmic in size.
            let log_n = (n as f64).log2().max(1.0) as usize;
            assert!(batches.last().unwrap().len() >= log_n.min(n), "n={n}");
        }
    }

    #[test]
    fn solo_process_wins_in_the_first_batch_with_few_probes() {
        let renaming = BitBatchingRenaming::with_factory(64, RatRaceTas::new);
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 5);
        let report = renaming.acquire_with_report(&mut ctx).unwrap();
        assert!(
            report.name >= 1 && report.name <= 32,
            "name {}",
            report.name
        );
        assert_eq!(report.winning_batch, Some(0));
        assert_eq!(report.probes, 1);
        assert!(!report.entered_second_stage);
    }

    #[test]
    fn sequential_full_load_yields_a_tight_namespace() {
        let n = 32;
        let renaming = BitBatchingRenaming::with_factory(n, RatRaceTas::new);
        let mut names = Vec::new();
        for id in 0..n {
            let mut ctx = ProcessCtx::new(ProcessId::new(id), 7);
            names.push(renaming.acquire(&mut ctx).unwrap());
        }
        assert_tight_namespace(&names).unwrap();
    }

    #[test]
    fn concurrent_full_load_yields_a_tight_namespace() {
        for seed in 0..5 {
            let n = 16;
            let renaming = Arc::new(BitBatchingRenaming::with_factory(n, RatRaceTas::new));
            let config = ExecConfig::new(seed)
                .with_yield_policy(YieldPolicy::Probabilistic(0.1))
                .with_arrival(ArrivalSchedule::Simultaneous);
            let outcome = Executor::new(config).run(n, {
                let renaming = Arc::clone(&renaming);
                move |ctx| renaming.acquire(ctx).unwrap()
            });
            assert_tight_namespace(&outcome.results())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn partial_load_yields_unique_names_within_n() {
        let renaming = Arc::new(BitBatchingRenaming::with_factory(64, RatRaceTas::new));
        let outcome = Executor::new(ExecConfig::new(11)).run(20, {
            let renaming = Arc::clone(&renaming);
            move |ctx| renaming.acquire(ctx).unwrap()
        });
        let names = outcome.results();
        crate::traits::assert_unique_names(&names).unwrap();
        assert!(names.iter().all(|&name| (1..=64).contains(&name)));
    }

    #[test]
    fn hardware_slots_are_supported() {
        let slots: Vec<HardwareTas> = (0..16).map(|_| HardwareTas::new()).collect();
        let renaming = Arc::new(BitBatchingRenaming::with_slots(slots));
        let outcome = Executor::new(ExecConfig::new(2)).run(16, {
            let renaming = Arc::clone(&renaming);
            move |ctx| renaming.acquire(ctx).unwrap()
        });
        assert_tight_namespace(&outcome.results()).unwrap();
    }

    #[test]
    fn capacity_exceeded_is_reported_not_hung() {
        let renaming =
            BitBatchingRenaming::with_slots((0..4).map(|_| HardwareTas::new()).collect::<Vec<_>>());
        let mut names = Vec::new();
        for id in 0..4 {
            let mut ctx = ProcessCtx::new(ProcessId::new(id), 0);
            names.push(renaming.acquire(&mut ctx).unwrap());
        }
        let mut extra = ProcessCtx::new(ProcessId::new(4), 0);
        assert_eq!(
            renaming.acquire(&mut extra),
            Err(RenamingError::CapacityExceeded { capacity: 4 })
        );
    }

    #[test]
    fn crashed_processes_do_not_break_uniqueness() {
        for seed in 0..5 {
            let renaming = Arc::new(BitBatchingRenaming::with_factory(24, RatRaceTas::new));
            let config = ExecConfig::new(seed).with_crash_plan(CrashPlan::Random {
                prob: 0.3,
                max_steps: 40,
            });
            let outcome = Executor::new(config).run(24, {
                let renaming = Arc::clone(&renaming);
                move |ctx| renaming.acquire(ctx).unwrap()
            });
            crate::traits::assert_unique_names(&outcome.results()).unwrap();
        }
    }

    #[test]
    fn probe_counts_stay_polylogarithmic_under_full_load() {
        let n = 64;
        let renaming = Arc::new(BitBatchingRenaming::with_factory(n, RatRaceTas::new));
        let outcome = Executor::new(ExecConfig::new(9)).run(n, {
            let renaming = Arc::clone(&renaming);
            move |ctx| renaming.acquire_with_report(ctx).unwrap()
        });
        let log_n = (n as f64).log2();
        let bound = (3.0 * log_n * log_n + 2.0 * log_n) as usize + n / 4;
        for report in outcome.results() {
            assert!(
                report.probes <= bound,
                "probes {} exceed the O(log² n) regime (bound {bound})",
                report.probes
            );
        }
    }

    #[test]
    fn slots_materialize_lazily() {
        let renaming = BitBatchingRenaming::with_factory(1024, RatRaceTas::new);
        assert_eq!(renaming.allocated_slots(), 0, "construction builds nothing");
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 5);
        let report = renaming.acquire_with_report(&mut ctx).unwrap();
        assert!(report.name >= 1);
        let allocated = renaming.allocated_slots();
        assert!(
            (1..1024).contains(&allocated),
            "a solo process touches a few slots, not the whole vector ({allocated})"
        );

        // Pre-built slots arrive fully materialized.
        let eager =
            BitBatchingRenaming::with_slots((0..8).map(|_| HardwareTas::new()).collect::<Vec<_>>());
        assert_eq!(eager.allocated_slots(), 8);
    }

    #[test]
    fn trait_metadata_is_reported() {
        let renaming = BitBatchingRenaming::with_factory(8, RatRaceTas::new);
        assert_eq!(renaming.capacity(), Some(8));
        assert!(!renaming.is_adaptive());
        assert_eq!(renaming.len(), 8);
        assert!(!renaming.is_empty());
        assert_eq!(renaming.trials_per_batch(), 9);
        assert!(format!("{renaming:?}").contains("BitBatchingRenaming"));
    }

    #[test]
    #[should_panic(expected = "at least two names")]
    fn tiny_vectors_are_rejected() {
        let _ = BitBatchingRenaming::with_factory(1, RatRaceTas::new);
    }
}
