//! Bounded exponential backoff for transient-contention retry loops.
//!
//! The crash-recovery paths introduced with the chaos harness put
//! acquirers in a new situation: an operation that would previously have
//! failed fast (`CapacityExceeded`) may be failing only because a sweep or
//! restart recovery is *in flight* — the capacity exists, it just has not
//! been pushed back yet. Those callers retry a bounded number of times,
//! and this type paces the retries: spin (busy-wait) while the wait is
//! expected to be nanoseconds, then escalate to `yield_now` so a stalled
//! recoverer on the same core can actually run, then report completion so
//! the caller falls back to its ordinary error path.
//!
//! The shape (doubling spins up to a spin limit, then yields up to a yield
//! limit) is the classic one from crossbeam's `Backoff`; re-implemented
//! here because the build is offline and the workspace vendors no
//! concurrency crates. Deliberately *not* time-based: under the virtual
//! executor (`shmem::vexec`) and miri there is no meaningful wall clock,
//! but a step-bounded loop terminates identically everywhere.

/// Doubling spin counts up to `2^SPIN_LIMIT` iterations per step.
const SPIN_LIMIT: u32 = 6;
/// After the spin phase, this many additional `yield_now` steps.
const YIELD_LIMIT: u32 = 10;

/// A bounded exponential backoff (see the module docs).
///
/// # Example
///
/// ```
/// use adaptive_renaming::backoff::Backoff;
///
/// let mut backoff = Backoff::new();
/// let mut attempts = 0;
/// while !backoff.is_completed() {
///     attempts += 1;
///     backoff.snooze();
/// }
/// assert_eq!(attempts, 17, "the retry budget is bounded and deterministic");
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// A fresh backoff at step zero.
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Resets to step zero — call after the contended operation succeeds so
    /// a long-lived loop starts its next wait cheap again.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Busy-spins for the current step's duration and advances the step.
    /// Use when the caller will retry regardless (pure contention, no
    /// blocked-on-a-peer component); never yields the thread.
    pub fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if self.step <= SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Backs off for the current step and advances it: spins while the step
    /// is below the spin limit, yields the thread afterwards (a recoverer
    /// holding the admission gate may need this core to finish).
    pub fn snooze(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        self.step += 1;
    }

    /// Whether the bounded budget is spent: the caller should stop retrying
    /// and take its ordinary failure path.
    pub fn is_completed(&self) -> bool {
        self.step > SPIN_LIMIT + YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_budget_is_deterministic_and_bounded() {
        let mut backoff = Backoff::new();
        let mut steps = 0;
        while !backoff.is_completed() {
            backoff.snooze();
            steps += 1;
        }
        assert_eq!(steps, (SPIN_LIMIT + YIELD_LIMIT + 1) as usize);
        backoff.reset();
        assert!(!backoff.is_completed(), "reset restores the budget");
    }

    #[test]
    fn spin_saturates_below_the_yield_phase() {
        let mut backoff = Backoff::new();
        for _ in 0..100 {
            backoff.spin();
        }
        assert!(
            !backoff.is_completed(),
            "pure spinning never exhausts the snooze budget"
        );
    }
}
