//! Compare-and-swap max register baseline.
//!
//! The paper's constructions deliberately avoid read-modify-write primitives;
//! this baseline shows what a max register costs when compare-and-swap *is*
//! allowed (a retry loop on a single word). Experiments use it as the
//! hardware-assisted comparison point for the counter (E8).

use crate::MaxRegister;
use shmem::process::ProcessCtx;
use shmem::register::AtomicU64Register;

/// A max register implemented as a compare-and-swap retry loop on one word.
///
/// # Example
///
/// ```
/// use maxreg::{CasMaxRegister, MaxRegister};
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let register = CasMaxRegister::new();
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
/// register.write_max(&mut ctx, 9);
/// register.write_max(&mut ctx, 4);
/// assert_eq!(register.read_max(&mut ctx), 9);
/// ```
#[derive(Debug, Default)]
pub struct CasMaxRegister {
    cell: AtomicU64Register,
}

impl CasMaxRegister {
    /// Creates a max register holding 0.
    pub fn new() -> Self {
        CasMaxRegister {
            cell: AtomicU64Register::new(0),
        }
    }
}

impl MaxRegister for CasMaxRegister {
    fn write_max(&self, ctx: &mut ProcessCtx, value: u64) {
        let mut current = self.cell.read(ctx);
        while current < value {
            match self.cell.compare_and_swap(ctx, current, value) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    fn read_max(&self, ctx: &mut ProcessCtx) -> u64 {
        self.cell.read(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::process::ProcessId;

    #[test]
    fn tracks_the_running_maximum() {
        let register = CasMaxRegister::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        assert_eq!(register.read_max(&mut ctx), 0);
        register.write_max(&mut ctx, 10);
        register.write_max(&mut ctx, 3);
        register.write_max(&mut ctx, 12);
        assert_eq!(register.read_max(&mut ctx), 12);
    }

    #[test]
    fn writes_below_the_maximum_cost_a_single_read() {
        let register = CasMaxRegister::new();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        register.write_max(&mut ctx, 100);
        let before = ctx.stats().total();
        register.write_max(&mut ctx, 50);
        assert_eq!(ctx.stats().total() - before, 1);
    }
}
