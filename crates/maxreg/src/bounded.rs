//! The tree-based bounded max register of Aspnes, Attiya and Censor.
//!
//! A max register over `0..capacity` is a binary tree: the root holds a
//! one-bit *switch* register; values below `capacity/2` live in the left
//! subtree (reachable only while the switch is unset) and larger values live
//! in the right subtree (setting the switch on the way out). Both operations
//! touch one node per level, so the cost is `O(log capacity)` register steps —
//! the building block behind the paper's `O(log v)` counter increments.

use crate::MaxRegister;
use shmem::process::ProcessCtx;
use shmem::register::AtomicBoolRegister;
use std::fmt;
use std::sync::OnceLock;

/// One node of the max-register tree, allocated lazily along write paths.
struct Node {
    switch: AtomicBoolRegister,
    left: OnceLock<Box<Node>>,
    right: OnceLock<Box<Node>>,
}

impl Node {
    fn new() -> Self {
        Node {
            switch: AtomicBoolRegister::new(false),
            left: OnceLock::new(),
            right: OnceLock::new(),
        }
    }

    fn left(&self) -> &Node {
        self.left.get_or_init(|| Box::new(Node::new()))
    }

    fn right(&self) -> &Node {
        self.right.get_or_init(|| Box::new(Node::new()))
    }

    /// Writes `value` into the subtree covering `0..capacity`.
    fn write_max(&self, ctx: &mut ProcessCtx, value: u64, capacity: u64) {
        if capacity <= 1 {
            // A single-value register stores only 0; nothing to record.
            return;
        }
        let half = capacity / 2;
        if value < half {
            // Values in the lower half only count while no larger value has
            // been recorded; checking the switch first keeps the operation
            // linearizable (a set switch means a larger value already "won").
            if !self.switch.read(ctx) {
                self.left().write_max(ctx, value, half);
            }
        } else {
            self.right().write_max(ctx, value - half, capacity - half);
            self.switch.write(ctx, true);
        }
    }

    /// Reads the maximum of the subtree covering `0..capacity`.
    fn read_max(&self, ctx: &mut ProcessCtx, capacity: u64) -> u64 {
        if capacity <= 1 {
            return 0;
        }
        let half = capacity / 2;
        if self.switch.read(ctx) {
            half + self.right().read_max(ctx, capacity - half)
        } else {
            self.left().read_max(ctx, half)
        }
    }
}

/// A linearizable max register over values `0..capacity`, built from
/// read/write registers with `O(log capacity)` steps per operation.
///
/// # Example
///
/// ```
/// use maxreg::{BoundedMaxRegister, MaxRegister};
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let register = BoundedMaxRegister::new(1024);
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
/// assert_eq!(register.read_max(&mut ctx), 0);
/// register.write_max(&mut ctx, 700);
/// register.write_max(&mut ctx, 300);
/// assert_eq!(register.read_max(&mut ctx), 700);
/// ```
pub struct BoundedMaxRegister {
    capacity: u64,
    root: Node,
}

impl BoundedMaxRegister {
    /// Creates a max register over `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "max register capacity must be positive");
        BoundedMaxRegister {
            capacity,
            root: Node::new(),
        }
    }

    /// The exclusive upper bound on storable values.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

impl fmt::Debug for BoundedMaxRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoundedMaxRegister")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl MaxRegister for BoundedMaxRegister {
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    fn write_max(&self, ctx: &mut ProcessCtx, value: u64) {
        assert!(
            value < self.capacity,
            "value {value} exceeds max register capacity {}",
            self.capacity
        );
        self.root.write_max(ctx, value, self.capacity);
    }

    fn read_max(&self, ctx: &mut ProcessCtx) -> u64 {
        self.root.read_max(ctx, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::process::ProcessId;

    fn ctx() -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(0), 0)
    }

    #[test]
    fn initial_value_is_zero() {
        let register = BoundedMaxRegister::new(16);
        assert_eq!(register.capacity(), 16);
        assert_eq!(register.read_max(&mut ctx()), 0);
    }

    #[test]
    fn read_returns_the_running_maximum() {
        let register = BoundedMaxRegister::new(100);
        let mut ctx = ctx();
        let mut expected = 0;
        for value in [5u64, 3, 40, 12, 99, 7, 63] {
            register.write_max(&mut ctx, value);
            expected = expected.max(value);
            assert_eq!(register.read_max(&mut ctx), expected);
        }
    }

    #[test]
    fn capacity_one_register_always_reads_zero() {
        let register = BoundedMaxRegister::new(1);
        let mut ctx = ctx();
        register.write_max(&mut ctx, 0);
        assert_eq!(register.read_max(&mut ctx), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedMaxRegister::new(0);
    }

    #[test]
    #[should_panic(expected = "exceeds max register capacity")]
    fn out_of_range_writes_are_rejected() {
        let register = BoundedMaxRegister::new(4);
        register.write_max(&mut ctx(), 4);
    }

    #[test]
    fn operations_cost_logarithmically_many_steps() {
        for exponent in [4u32, 8, 12, 16, 20] {
            let capacity = 1u64 << exponent;
            let register = BoundedMaxRegister::new(capacity);
            let mut ctx = ctx();
            register.write_max(&mut ctx, capacity - 1);
            let write_steps = ctx.stats().total();
            // Writing the largest value walks the right spine: one switch
            // read... actually one register write per level plus the
            // recursion's switch writes — in any case Θ(log capacity).
            assert!(
                write_steps <= 2 * exponent as u64 + 2,
                "capacity 2^{exponent}: write cost {write_steps}"
            );
            let before_read = ctx.stats().total();
            let value = register.read_max(&mut ctx);
            let read_steps = ctx.stats().total() - before_read;
            assert_eq!(value, capacity - 1);
            assert!(
                read_steps <= exponent as u64 + 1,
                "capacity 2^{exponent}: read cost {read_steps}"
            );
        }
    }

    #[test]
    fn low_writes_do_not_overwrite_higher_values() {
        let register = BoundedMaxRegister::new(256);
        let mut ctx = ctx();
        register.write_max(&mut ctx, 200);
        register.write_max(&mut ctx, 3);
        register.write_max(&mut ctx, 150);
        assert_eq!(register.read_max(&mut ctx), 200);
    }

    #[test]
    fn sequential_writes_of_every_value_read_back_the_maximum() {
        let register = BoundedMaxRegister::new(33);
        let mut ctx = ctx();
        for value in 0..33 {
            register.write_max(&mut ctx, value);
        }
        assert_eq!(register.read_max(&mut ctx), 32);
    }
}
