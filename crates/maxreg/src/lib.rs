//! Max registers (Aspnes, Attiya, Censor — PODC 2009).
//!
//! The paper's monotone-consistent counter (§8.1) pairs the adaptive strong
//! renaming object with a *max register*: `increment` writes the newly
//! acquired name to the max register, `read` returns its current maximum.
//! This crate reproduces the max-register substrate:
//!
//! * [`BoundedMaxRegister`] — the tree-based construction of \[17\]: a max
//!   register over values `0..capacity` built from read/write registers with
//!   `O(log capacity)` steps per operation.
//! * [`UnboundedMaxRegister`] — an unbounded max register assembled from
//!   doubling-capacity bounded registers, giving `O(log v)` steps for
//!   operations involving values around `v`.
//! * [`CasMaxRegister`] — a compare-and-swap baseline with `O(1)` expected
//!   steps per operation under low contention, used by the experiments as the
//!   "hardware RMW" comparison point.
//!
//! # Example
//!
//! ```
//! use maxreg::{BoundedMaxRegister, MaxRegister};
//! use shmem::process::{ProcessCtx, ProcessId};
//!
//! let register = BoundedMaxRegister::new(64);
//! let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
//! register.write_max(&mut ctx, 17);
//! register.write_max(&mut ctx, 5);
//! assert_eq!(register.read_max(&mut ctx), 17);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounded;
pub mod cas;
pub mod unbounded;

pub use bounded::BoundedMaxRegister;
pub use cas::CasMaxRegister;
pub use unbounded::UnboundedMaxRegister;

use shmem::process::ProcessCtx;

/// A linearizable max register: `write_max(v)` raises the stored maximum to at
/// least `v`, and `read_max()` returns the largest value written by any
/// operation linearized before it.
pub trait MaxRegister: Send + Sync {
    /// Records `value` in the register: subsequent reads return at least
    /// `value`.
    fn write_max(&self, ctx: &mut ProcessCtx, value: u64);

    /// Returns the largest value written so far (0 if nothing was written).
    fn read_max(&self, ctx: &mut ProcessCtx) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::adversary::{ExecConfig, YieldPolicy};
    use shmem::executor::Executor;
    use std::sync::Arc;

    /// Shared behavioural test applied to every implementation: concurrent
    /// writers followed by a read must observe the maximum of all writes, and
    /// reads interleaved with writes never exceed the largest started write.
    fn concurrent_max_semantics<M: MaxRegister + 'static>(make: impl Fn() -> M) {
        for seed in 0..10 {
            let register = Arc::new(make());
            let writers = 8u64;
            let outcome = Executor::new(
                ExecConfig::new(seed).with_yield_policy(YieldPolicy::Probabilistic(0.2)),
            )
            .run(writers as usize, {
                let register = Arc::clone(&register);
                move |ctx| {
                    let value = (ctx.id().as_u64() + 1) * 10;
                    register.write_max(ctx, value);
                    register.read_max(ctx)
                }
            });
            let reads = outcome.results();
            assert_eq!(reads.len(), writers as usize);
            for (process, read) in outcome.completed() {
                let own = (process.as_u64() + 1) * 10;
                assert!(
                    *read >= own,
                    "seed {seed}: read {read} below own write {own}"
                );
                assert!(*read <= writers * 10, "seed {seed}: read {read} too large");
            }
        }
    }

    #[test]
    fn bounded_register_satisfies_concurrent_max_semantics() {
        concurrent_max_semantics(|| BoundedMaxRegister::new(128));
    }

    #[test]
    fn unbounded_register_satisfies_concurrent_max_semantics() {
        concurrent_max_semantics(UnboundedMaxRegister::new);
    }

    #[test]
    fn cas_register_satisfies_concurrent_max_semantics() {
        concurrent_max_semantics(CasMaxRegister::new);
    }
}
