//! An unbounded max register with `O(log v)` cost.
//!
//! The §8.1 counter needs a max register whose cost scales with the *values
//! actually written* (the number of increments so far), not with a statically
//! chosen capacity. [`UnboundedMaxRegister`] achieves this by bucketing values
//! into doubling ranges: bucket `b` covers `[2^b − 1, 2^(b+1) − 1)` and holds a
//! [`BoundedMaxRegister`] of capacity `2^b` plus a one-bit occupancy switch.
//! A write to value `v` updates bucket `⌊log₂(v+1)⌋` and then raises the
//! occupancy switches of every bucket up to it; a read scans the occupancy
//! switches upward until the first unset one and returns the maximum stored in
//! the last occupied bucket. Both operations therefore cost `O(log v)`
//! register steps, where `v` bounds the values involved.

use crate::bounded::BoundedMaxRegister;
use crate::MaxRegister;
use shmem::process::ProcessCtx;
use shmem::register::AtomicBoolRegister;
use std::fmt;
use std::sync::OnceLock;

/// Number of doubling buckets: covers every `u64` value.
const BUCKETS: usize = 64;

struct Bucket {
    occupied: AtomicBoolRegister,
    values: OnceLock<BoundedMaxRegister>,
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            occupied: AtomicBoolRegister::new(false),
            values: OnceLock::new(),
        }
    }

    fn values(&self, capacity: u64) -> &BoundedMaxRegister {
        self.values
            .get_or_init(|| BoundedMaxRegister::new(capacity))
    }
}

/// An unbounded linearizable max register with `O(log v)`-step operations.
///
/// # Example
///
/// ```
/// use maxreg::{MaxRegister, UnboundedMaxRegister};
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let register = UnboundedMaxRegister::new();
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
/// register.write_max(&mut ctx, 1_000_000);
/// register.write_max(&mut ctx, 12);
/// assert_eq!(register.read_max(&mut ctx), 1_000_000);
/// ```
pub struct UnboundedMaxRegister {
    buckets: Vec<Bucket>,
}

impl UnboundedMaxRegister {
    /// Creates an empty unbounded max register.
    pub fn new() -> Self {
        UnboundedMaxRegister {
            buckets: (0..BUCKETS).map(|_| Bucket::new()).collect(),
        }
    }

    /// The bucket index covering `value` and the value's offset within it.
    fn locate(value: u64) -> (usize, u64) {
        // Bucket b covers [2^b - 1, 2^(b+1) - 1).
        let bucket = (64 - (value + 1).leading_zeros() - 1) as usize;
        let offset = value - ((1u64 << bucket) - 1);
        (bucket, offset)
    }

    /// The capacity of bucket `b`.
    fn bucket_capacity(bucket: usize) -> u64 {
        1u64 << bucket
    }
}

impl Default for UnboundedMaxRegister {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for UnboundedMaxRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnboundedMaxRegister")
            .field("buckets", &BUCKETS)
            .finish()
    }
}

impl MaxRegister for UnboundedMaxRegister {
    fn write_max(&self, ctx: &mut ProcessCtx, value: u64) {
        let (bucket, offset) = Self::locate(value);
        // Record the value inside its bucket first, then announce occupancy
        // from the bucket downward, so a reader that sees an occupied bucket
        // is guaranteed to find the value (or a larger one) inside it.
        self.buckets[bucket]
            .values(Self::bucket_capacity(bucket))
            .write_max(ctx, offset);
        for b in (0..=bucket).rev() {
            self.buckets[b].occupied.write(ctx, true);
        }
    }

    fn read_max(&self, ctx: &mut ProcessCtx) -> u64 {
        // Scan upward for the first unoccupied bucket.
        let mut highest: Option<usize> = None;
        for (index, bucket) in self.buckets.iter().enumerate() {
            if bucket.occupied.read(ctx) {
                highest = Some(index);
            } else {
                break;
            }
        }
        match highest {
            None => 0,
            Some(bucket) => {
                let within = self.buckets[bucket]
                    .values(Self::bucket_capacity(bucket))
                    .read_max(ctx);
                ((1u64 << bucket) - 1) + within
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::process::ProcessId;

    fn ctx() -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(0), 0)
    }

    #[test]
    fn locate_assigns_doubling_buckets() {
        assert_eq!(UnboundedMaxRegister::locate(0), (0, 0));
        assert_eq!(UnboundedMaxRegister::locate(1), (1, 0));
        assert_eq!(UnboundedMaxRegister::locate(2), (1, 1));
        assert_eq!(UnboundedMaxRegister::locate(3), (2, 0));
        assert_eq!(UnboundedMaxRegister::locate(6), (2, 3));
        assert_eq!(UnboundedMaxRegister::locate(7), (3, 0));
        let (bucket, offset) = UnboundedMaxRegister::locate(u64::MAX - 1);
        assert!(bucket < BUCKETS);
        assert!(offset < UnboundedMaxRegister::bucket_capacity(bucket));
    }

    #[test]
    fn initial_value_is_zero() {
        let register = UnboundedMaxRegister::new();
        assert_eq!(register.read_max(&mut ctx()), 0);
    }

    #[test]
    fn read_returns_the_running_maximum() {
        let register = UnboundedMaxRegister::new();
        let mut ctx = ctx();
        let mut expected = 0;
        for value in [3u64, 17, 2, 250, 90, 4096, 511, 100_000, 99_999] {
            register.write_max(&mut ctx, value);
            expected = expected.max(value);
            assert_eq!(register.read_max(&mut ctx), expected);
        }
    }

    #[test]
    fn cost_scales_with_the_value_not_with_a_fixed_capacity() {
        // Writing/reading small values must cost far fewer steps than large
        // values, demonstrating the O(log v) profile.
        let register = UnboundedMaxRegister::new();
        let mut small_ctx = ctx();
        register.write_max(&mut small_ctx, 1);
        let small_cost = small_ctx.stats().total();
        assert!(small_cost <= 8, "small write cost {small_cost}");

        let register = UnboundedMaxRegister::new();
        let mut large_ctx = ctx();
        register.write_max(&mut large_ctx, 1 << 40);
        let large_cost = large_ctx.stats().total();
        assert!(large_cost > small_cost);
        assert!(
            large_cost <= 3 * 41 + 3,
            "large write cost {large_cost} should stay O(log v)"
        );
    }

    #[test]
    fn read_cost_scales_with_the_largest_written_value() {
        let register = UnboundedMaxRegister::new();
        let mut ctx = ctx();
        register.write_max(&mut ctx, 100);
        let before = ctx.stats().total();
        assert_eq!(register.read_max(&mut ctx), 100);
        let read_cost = ctx.stats().total() - before;
        assert!(read_cost <= 2 * 8 + 4, "read cost {read_cost}");
    }

    #[test]
    fn zero_is_a_valid_written_value() {
        let register = UnboundedMaxRegister::new();
        let mut ctx = ctx();
        register.write_max(&mut ctx, 0);
        assert_eq!(register.read_max(&mut ctx), 0);
        register.write_max(&mut ctx, 5);
        assert_eq!(register.read_max(&mut ctx), 5);
    }

    #[test]
    fn debug_output_is_nonempty() {
        assert!(format!("{:?}", UnboundedMaxRegister::new()).contains("UnboundedMaxRegister"));
    }
}
