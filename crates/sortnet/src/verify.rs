//! Sorting-network verification via the zero-one principle.
//!
//! Knuth's zero-one principle: a comparator network sorts *every* input
//! sequence if and only if it sorts every sequence of zeros and ones. The
//! paper's Lemma 2 proof uses exactly this principle; these helpers make it
//! executable, both exhaustively (for widths up to ~22 wires) and by random
//! sampling (for wider networks).

use crate::network::ComparatorNetwork;
use crate::schedule::ComparatorSchedule;
use rand::Rng;

/// Whether a 0/1 vector is sorted (all zeros before all ones).
fn is_sorted_zero_one(values: &[u8]) -> bool {
    values.windows(2).all(|pair| pair[0] <= pair[1])
}

/// Produces the 0/1 vector whose bits are given by `mask` (bit `i` of the
/// mask is input wire `i`).
fn zero_one_input(width: usize, mask: u64) -> Vec<u8> {
    (0..width).map(|wire| ((mask >> wire) & 1) as u8).collect()
}

/// Exhaustively checks the zero-one principle on a materialized network.
///
/// # Panics
///
/// Panics if the network is wider than 22 wires (2²² inputs is the practical
/// limit for exhaustive checking in tests); use
/// [`sorts_random_zero_one_inputs`] beyond that.
pub fn is_sorting_network_exhaustive(network: &ComparatorNetwork) -> bool {
    schedule_sorts_exhaustive(network)
}

/// Exhaustively checks the zero-one principle on any comparator schedule.
///
/// # Panics
///
/// Panics if the schedule is wider than 22 wires.
pub fn schedule_sorts_exhaustive<S: ComparatorSchedule>(schedule: &S) -> bool {
    let width = schedule.width();
    assert!(
        width <= 22,
        "exhaustive zero-one verification supports at most 22 wires; got {width}"
    );
    for mask in 0..(1u64 << width) {
        let input = zero_one_input(width, mask);
        let output = schedule.apply_schedule(&input);
        if !is_sorted_zero_one(&output) {
            return false;
        }
    }
    true
}

/// Checks the zero-one principle on `trials` uniformly random 0/1 inputs.
///
/// A `true` answer is probabilistic evidence, not proof; a `false` answer is
/// a definite counterexample.
pub fn sorts_random_zero_one_inputs<S, R>(schedule: &S, trials: usize, rng: &mut R) -> bool
where
    S: ComparatorSchedule,
    R: Rng + ?Sized,
{
    let width = schedule.width();
    for _ in 0..trials {
        let input: Vec<u8> = (0..width).map(|_| rng.gen_range(0..=1u8)).collect();
        let output = schedule.apply_schedule(&input);
        if !is_sorted_zero_one(&output) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Comparator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sorter2() -> ComparatorNetwork {
        let mut network = ComparatorNetwork::new(2);
        network.push_stage(vec![Comparator::new(0, 1)]);
        network
    }

    fn broken3() -> ComparatorNetwork {
        // Only compares (0,1): cannot sort inputs where wire 2 holds a 0.
        let mut network = ComparatorNetwork::new(3);
        network.push_stage(vec![Comparator::new(0, 1)]);
        network
    }

    #[test]
    fn a_single_comparator_sorts_two_wires() {
        assert!(is_sorting_network_exhaustive(&sorter2()));
    }

    #[test]
    fn exhaustive_check_detects_non_sorting_networks() {
        assert!(!is_sorting_network_exhaustive(&broken3()));
    }

    #[test]
    fn random_check_detects_non_sorting_networks() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sorts_random_zero_one_inputs(&sorter2(), 50, &mut rng));
        assert!(!sorts_random_zero_one_inputs(&broken3(), 200, &mut rng));
    }

    #[test]
    #[should_panic(expected = "at most 22 wires")]
    fn exhaustive_check_rejects_very_wide_networks() {
        let network = ComparatorNetwork::new(30);
        let _ = is_sorting_network_exhaustive(&network);
    }

    #[test]
    fn zero_one_helpers_behave() {
        assert!(is_sorted_zero_one(&[0, 0, 1, 1]));
        assert!(!is_sorted_zero_one(&[1, 0]));
        assert_eq!(zero_one_input(4, 0b1010), vec![0, 1, 0, 1]);
    }
}
