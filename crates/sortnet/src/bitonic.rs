//! Bitonic sorting network (ascending-comparator variant).
//!
//! Batcher's bitonic sorter is the second constructible `O(log² n)`-depth
//! family the paper mentions (§1, §6.1). The textbook presentation uses
//! comparators of both orientations; here we build the standard variant that
//! uses only min-up comparators by replacing each block's first merge step
//! with the "triangle" pattern that compares wire `i` with wire
//! `block_end - 1 - i`. The result is a valid sorting network over min-up
//! comparators, suitable for renaming networks.

use crate::network::{Comparator, ComparatorNetwork};

/// Builds a bitonic sorting network on `width` wires (min-up comparators
/// only). Non-power-of-two widths are obtained by truncating the
/// next-power-of-two network.
///
/// # Panics
///
/// Panics if `width < 2`.
///
/// # Example
///
/// ```
/// use sortnet::bitonic::bitonic_network;
///
/// let network = bitonic_network(8);
/// assert_eq!(network.apply(&[8, 7, 6, 5, 4, 3, 2, 1]), vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// ```
pub fn bitonic_network(width: usize) -> ComparatorNetwork {
    assert!(width >= 2, "a sorting network needs at least two wires");
    let phys = width.next_power_of_two();
    let mut network = ComparatorNetwork::new(phys);

    let mut block = 2usize;
    while block <= phys {
        // Triangle stage: within each block, compare i with (block - 1 - i).
        let mut stage = Vec::new();
        let mut start = 0;
        while start < phys {
            for i in 0..block / 2 {
                stage.push(Comparator::new(start + i, start + block - 1 - i));
            }
            start += block;
        }
        network.push_stage(stage);

        // Half-cleaner stages with shrinking distance.
        let mut distance = block / 4;
        while distance >= 1 {
            let mut stage = Vec::new();
            let mut start = 0;
            while start < phys {
                for i in 0..distance {
                    stage.push(Comparator::new(start + i, start + i + distance));
                }
                start += 2 * distance;
            }
            network.push_stage(stage);
            distance /= 2;
        }

        block *= 2;
    }

    if width == phys {
        network
    } else {
        network.truncate(width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_sorting_network_exhaustive;

    #[test]
    fn power_of_two_widths_sort_exhaustively() {
        for width in [2usize, 4, 8, 16] {
            assert!(
                is_sorting_network_exhaustive(&bitonic_network(width)),
                "width {width}"
            );
        }
    }

    #[test]
    fn truncated_widths_sort_exhaustively() {
        for width in [3usize, 5, 6, 7, 10, 12, 15] {
            assert!(
                is_sorting_network_exhaustive(&bitonic_network(width)),
                "width {width}"
            );
        }
    }

    #[test]
    fn depth_matches_the_log_squared_formula_for_powers_of_two() {
        for exponent in 1..=8u32 {
            let width = 1usize << exponent;
            let network = bitonic_network(width);
            let expected = (exponent * (exponent + 1) / 2) as usize;
            assert_eq!(network.depth(), expected, "width {width}");
        }
    }

    #[test]
    fn sorts_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for width in [6usize, 16, 31, 64] {
            let network = bitonic_network(width);
            for _ in 0..20 {
                let input: Vec<i32> = (0..width).map(|_| rng.gen_range(-50..50)).collect();
                let mut expected = input.clone();
                expected.sort_unstable();
                assert_eq!(network.apply(&input), expected, "width {width}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two wires")]
    fn width_one_is_rejected() {
        let _ = bitonic_network(1);
    }
}
