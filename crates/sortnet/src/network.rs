//! Materialized comparator networks.
//!
//! A comparator network is a sequence of *stages*; each stage is a set of
//! comparators on pairwise-disjoint wires, so all comparators of a stage may
//! execute in parallel. A comparator `(top, bottom)` with `top < bottom`
//! routes the smaller value to the `top` wire and the larger value to the
//! `bottom` wire — the "min up" convention the paper's renaming networks rely
//! on (winning a test-and-set moves a process *up*).

use std::fmt;

/// A single min-up comparator between two wires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Comparator {
    /// The upper wire (smaller index); receives the smaller value.
    pub top: usize,
    /// The lower wire (larger index); receives the larger value.
    pub bottom: usize,
}

impl Comparator {
    /// Creates a comparator between two distinct wires, normalizing order.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: usize, b: usize) -> Self {
        assert_ne!(a, b, "a comparator needs two distinct wires");
        Comparator {
            top: a.min(b),
            bottom: a.max(b),
        }
    }

    /// Whether this comparator touches the given wire.
    pub fn touches(&self, wire: usize) -> bool {
        self.top == wire || self.bottom == wire
    }

    /// Given one of the comparator's wires, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is not one of the comparator's wires.
    pub fn other(&self, wire: usize) -> usize {
        if wire == self.top {
            self.bottom
        } else if wire == self.bottom {
            self.top
        } else {
            panic!("wire {wire} is not part of comparator {self:?}")
        }
    }
}

impl fmt::Display for Comparator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.top, self.bottom)
    }
}

/// Sentinel marking a wire idle in a stage's lookup row.
const NO_COMPARATOR: u32 = u32::MAX;

/// A materialized comparator network: a fixed width and a sequence of stages.
///
/// Alongside the stage lists, the network maintains a per-stage *wire lookup
/// row* mapping each wire to the comparator touching it, so
/// [`ComparatorNetwork::comparator_touching`] (and therefore the
/// [`ComparatorSchedule`](crate::schedule::ComparatorSchedule) query) is O(1)
/// instead of a scan of the stage.
///
/// # Example
///
/// ```
/// use sortnet::network::{Comparator, ComparatorNetwork};
///
/// // A 3-wire sorting network (insertion sort).
/// let mut network = ComparatorNetwork::new(3);
/// network.push_stage(vec![Comparator::new(0, 1)]);
/// network.push_stage(vec![Comparator::new(1, 2)]);
/// network.push_stage(vec![Comparator::new(0, 1)]);
/// assert_eq!(network.apply(&[3, 2, 1]), vec![1, 2, 3]);
/// assert_eq!(network.depth(), 3);
/// assert_eq!(network.size(), 3);
/// assert_eq!(network.comparator_touching(1, 2), Some(Comparator::new(1, 2)));
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct ComparatorNetwork {
    width: usize,
    stages: Vec<Vec<Comparator>>,
    /// `stage_lookup[s][w]` = index within `stages[s]` of the comparator
    /// touching wire `w`, or [`NO_COMPARATOR`]. Maintained by every mutator.
    stage_lookup: Vec<Vec<u32>>,
}

/// Builds the lookup row of one stage.
fn lookup_row(width: usize, comparators: &[Comparator]) -> Vec<u32> {
    let mut row = vec![NO_COMPARATOR; width];
    for (index, comparator) in comparators.iter().enumerate() {
        let index = u32::try_from(index).expect("stage has more than u32::MAX comparators");
        row[comparator.top] = index;
        row[comparator.bottom] = index;
    }
    row
}

impl ComparatorNetwork {
    /// Creates an empty network over `width` wires.
    pub fn new(width: usize) -> Self {
        ComparatorNetwork {
            width,
            stages: Vec::new(),
            stage_lookup: Vec::new(),
        }
    }

    /// Appends a stage without validating it, keeping the lookup index in
    /// sync. Callers must guarantee well-formedness.
    fn push_stage_unchecked(&mut self, comparators: Vec<Comparator>) {
        self.stage_lookup.push(lookup_row(self.width, &comparators));
        self.stages.push(comparators);
    }

    /// The number of wires.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The number of stages (the network's depth).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// The total number of comparators.
    pub fn size(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// The stages of the network, in execution order.
    pub fn stages(&self) -> &[Vec<Comparator>] {
        &self.stages
    }

    /// Iterates over every comparator with its stage index.
    pub fn comparators(&self) -> impl Iterator<Item = (usize, Comparator)> + '_ {
        self.stages
            .iter()
            .enumerate()
            .flat_map(|(stage, comparators)| comparators.iter().map(move |&c| (stage, c)))
    }

    /// Appends a stage of comparators.
    ///
    /// # Panics
    ///
    /// Panics if any comparator references a wire `>= width`, or if two
    /// comparators in the stage share a wire.
    pub fn push_stage(&mut self, comparators: Vec<Comparator>) {
        let mut seen = vec![false; self.width];
        for comparator in &comparators {
            assert!(
                comparator.bottom < self.width,
                "comparator {comparator} exceeds network width {}",
                self.width
            );
            for wire in [comparator.top, comparator.bottom] {
                assert!(
                    !seen[wire],
                    "wire {wire} appears twice in one stage ({comparator})"
                );
                seen[wire] = true;
            }
        }
        self.push_stage_unchecked(comparators);
    }

    /// The comparator touching `wire` in `stage`, if any, in O(1) via the
    /// per-wire lookup index. Out-of-range stages and wires yield `None`.
    #[inline]
    pub fn comparator_touching(&self, stage: usize, wire: usize) -> Option<Comparator> {
        let row = self.stage_lookup.get(stage)?;
        match *row.get(wire)? {
            NO_COMPARATOR => None,
            index => Some(self.stages[stage][index as usize]),
        }
    }

    /// Appends every comparator of a sequence, greedily packing them into the
    /// fewest stages that keep each stage's wires disjoint while preserving
    /// the sequential order of comparators that share a wire.
    pub fn append_comparators<I: IntoIterator<Item = Comparator>>(&mut self, comparators: I) {
        // `ready_stage[w]` = first stage index at which wire `w` is free,
        // counting only stages appended by this call (earlier stages are
        // considered busy to preserve ordering with existing content).
        let base = self.stages.len();
        let mut ready_stage = vec![base; self.width];
        for comparator in comparators {
            assert!(
                comparator.bottom < self.width,
                "comparator {comparator} exceeds network width {}",
                self.width
            );
            let stage = ready_stage[comparator.top].max(ready_stage[comparator.bottom]);
            while self.stages.len() <= stage {
                self.stages.push(Vec::new());
            }
            self.stages[stage].push(comparator);
            ready_stage[comparator.top] = stage + 1;
            ready_stage[comparator.bottom] = stage + 1;
        }
        // Rebuild the lookup rows of the stages this call touched.
        self.stage_lookup.truncate(base);
        for stage in &self.stages[base..] {
            self.stage_lookup.push(lookup_row(self.width, stage));
        }
    }

    /// Applies the network to an input sequence, returning the output wires.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != width`.
    pub fn apply<T: Ord + Clone>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(
            input.len(),
            self.width,
            "input length must equal the network width"
        );
        let mut values: Vec<T> = input.to_vec();
        for stage in &self.stages {
            for comparator in stage {
                if values[comparator.top] > values[comparator.bottom] {
                    values.swap(comparator.top, comparator.bottom);
                }
            }
        }
        values
    }

    /// Applies the network and records, for each input position, the number
    /// of comparators the value starting there traversed and the output wire
    /// it reached. Used by the adaptivity experiments (Theorem 2).
    pub fn trace<T: Ord + Clone>(&self, input: &[T]) -> Vec<TraceEntry> {
        assert_eq!(
            input.len(),
            self.width,
            "input length must equal the network width"
        );
        let mut values: Vec<T> = input.to_vec();
        // `origin[w]` = index of the input whose value currently sits on wire w.
        let mut origin: Vec<usize> = (0..self.width).collect();
        let mut traversed = vec![0usize; self.width];
        for stage in &self.stages {
            for comparator in stage {
                traversed[origin[comparator.top]] += 1;
                traversed[origin[comparator.bottom]] += 1;
                if values[comparator.top] > values[comparator.bottom] {
                    values.swap(comparator.top, comparator.bottom);
                    origin.swap(comparator.top, comparator.bottom);
                }
            }
        }
        let mut entries: Vec<TraceEntry> = (0..self.width)
            .map(|input_wire| TraceEntry {
                input_wire,
                output_wire: 0,
                comparators_traversed: traversed[input_wire],
            })
            .collect();
        for (output_wire, &input_wire) in origin.iter().enumerate() {
            entries[input_wire].output_wire = output_wire;
        }
        entries
    }

    /// Returns a copy of this network restricted to the first `width` wires:
    /// comparators touching any dropped wire are removed.
    ///
    /// If the original network sorts and uses only min-up comparators, the
    /// truncation sorts its `width` wires (dropped wires behave as `+∞`
    /// inputs, which a min-up comparator never moves upward).
    pub fn truncate(&self, width: usize) -> ComparatorNetwork {
        let mut truncated = ComparatorNetwork::new(width);
        for stage in &self.stages {
            let kept: Vec<Comparator> =
                stage.iter().copied().filter(|c| c.bottom < width).collect();
            if !kept.is_empty() {
                truncated.push_stage_unchecked(kept);
            }
        }
        truncated
    }

    /// Returns this network with every wire index shifted by `offset`, on a
    /// total of `new_width` wires. Used to embed sub-networks into the §6.1
    /// adaptive construction.
    ///
    /// # Panics
    ///
    /// Panics if the shifted network would not fit in `new_width` wires.
    pub fn shift(&self, offset: usize, new_width: usize) -> ComparatorNetwork {
        assert!(
            self.width + offset <= new_width,
            "shifted network ({} wires + offset {offset}) exceeds new width {new_width}",
            self.width
        );
        let mut shifted = ComparatorNetwork::new(new_width);
        for stage in &self.stages {
            shifted.push_stage_unchecked(
                stage
                    .iter()
                    .map(|c| Comparator::new(c.top + offset, c.bottom + offset))
                    .collect(),
            );
        }
        shifted
    }

    /// Appends all stages of `other` (which must have the same width) after
    /// this network's stages.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn concat(&mut self, other: &ComparatorNetwork) {
        assert_eq!(
            self.width, other.width,
            "concatenated networks must have equal widths"
        );
        self.stages.extend(other.stages.iter().cloned());
        self.stage_lookup.extend(other.stage_lookup.iter().cloned());
    }
}

impl fmt::Debug for ComparatorNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComparatorNetwork")
            .field("width", &self.width)
            .field("stages", &self.stages)
            .finish()
    }
}

/// The path summary of one input value through a network (see
/// [`ComparatorNetwork::trace`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// The wire on which the value entered.
    pub input_wire: usize,
    /// The wire on which the value exited.
    pub output_wire: usize,
    /// How many comparators the value passed through.
    pub comparators_traversed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_wire_sorter() -> ComparatorNetwork {
        let mut network = ComparatorNetwork::new(3);
        network.push_stage(vec![Comparator::new(0, 1)]);
        network.push_stage(vec![Comparator::new(1, 2)]);
        network.push_stage(vec![Comparator::new(0, 1)]);
        network
    }

    #[test]
    fn comparator_normalizes_wire_order() {
        let c = Comparator::new(5, 2);
        assert_eq!(c.top, 2);
        assert_eq!(c.bottom, 5);
        assert!(c.touches(2) && c.touches(5) && !c.touches(3));
        assert_eq!(c.other(2), 5);
        assert_eq!(c.other(5), 2);
        assert_eq!(format!("{c}"), "(2, 5)");
    }

    #[test]
    #[should_panic(expected = "two distinct wires")]
    fn comparator_rejects_equal_wires() {
        let _ = Comparator::new(3, 3);
    }

    #[test]
    #[should_panic(expected = "is not part of comparator")]
    fn comparator_other_rejects_foreign_wires() {
        Comparator::new(0, 1).other(2);
    }

    #[test]
    fn apply_sorts_with_the_three_wire_network() {
        let network = three_wire_sorter();
        assert_eq!(network.width(), 3);
        assert_eq!(network.depth(), 3);
        assert_eq!(network.size(), 3);
        for input in [
            [1, 2, 3],
            [3, 2, 1],
            [2, 3, 1],
            [2, 1, 3],
            [3, 1, 2],
            [1, 3, 2],
        ] {
            assert_eq!(network.apply(&input), vec![1, 2, 3], "input {input:?}");
        }
    }

    #[test]
    #[should_panic(expected = "input length must equal")]
    fn apply_rejects_wrong_input_length() {
        three_wire_sorter().apply(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "exceeds network width")]
    fn push_stage_rejects_out_of_range_wires() {
        let mut network = ComparatorNetwork::new(2);
        network.push_stage(vec![Comparator::new(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "appears twice in one stage")]
    fn push_stage_rejects_overlapping_comparators() {
        let mut network = ComparatorNetwork::new(3);
        network.push_stage(vec![Comparator::new(0, 1), Comparator::new(1, 2)]);
    }

    #[test]
    fn append_comparators_packs_disjoint_comparators_into_one_stage() {
        let mut network = ComparatorNetwork::new(4);
        network.append_comparators(vec![Comparator::new(0, 1), Comparator::new(2, 3)]);
        assert_eq!(network.depth(), 1);
        network.append_comparators(vec![Comparator::new(1, 2), Comparator::new(0, 1)]);
        // (1,2) conflicts with nothing in the new batch's first stage, (0,1)
        // conflicts with it, so two further stages are created.
        assert_eq!(network.depth(), 3);
        assert_eq!(network.size(), 4);
    }

    #[test]
    fn comparators_iterator_yields_stage_indices() {
        let network = three_wire_sorter();
        let listed: Vec<(usize, Comparator)> = network.comparators().collect();
        assert_eq!(listed.len(), 3);
        assert_eq!(listed[0].0, 0);
        assert_eq!(listed[2].0, 2);
    }

    #[test]
    fn trace_counts_comparators_and_final_positions() {
        let network = three_wire_sorter();
        let trace = network.trace(&[3, 2, 1]);
        // The value 3 (input wire 0) ends on output wire 2.
        assert_eq!(trace[0].output_wire, 2);
        // The value 1 (input wire 2) ends on output wire 0.
        assert_eq!(trace[2].output_wire, 0);
        // Every input passes through at least one comparator here.
        assert!(trace.iter().all(|t| t.comparators_traversed >= 1));
        // Traversal counts are bounded by the network size.
        assert!(trace.iter().all(|t| t.comparators_traversed <= 3));
    }

    #[test]
    fn truncate_drops_comparators_touching_removed_wires() {
        let network = three_wire_sorter();
        let truncated = network.truncate(2);
        assert_eq!(truncated.width(), 2);
        assert_eq!(truncated.size(), 2); // the two (0,1) comparators survive
        assert_eq!(truncated.apply(&[2, 1]), vec![1, 2]);
    }

    #[test]
    fn shift_moves_all_wires_by_an_offset() {
        let network = three_wire_sorter();
        let shifted = network.shift(2, 5);
        assert_eq!(shifted.width(), 5);
        assert!(shifted.comparators().all(|(_, c)| c.top >= 2));
        assert_eq!(shifted.apply(&[9, 8, 3, 2, 1]), vec![9, 8, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeds new width")]
    fn shift_rejects_overflowing_offsets() {
        three_wire_sorter().shift(3, 5);
    }

    #[test]
    fn concat_appends_stages() {
        let mut a = three_wire_sorter();
        let b = three_wire_sorter();
        a.concat(&b);
        assert_eq!(a.depth(), 6);
        assert_eq!(a.size(), 6);
        assert_eq!(a.apply(&[3, 1, 2]), vec![1, 2, 3]);
    }

    /// The lookup index must agree with a scan of the stage lists after any
    /// sequence of mutations.
    fn assert_lookup_consistent(network: &ComparatorNetwork, label: &str) {
        for (stage, comparators) in network.stages().iter().enumerate() {
            for wire in 0..network.width() {
                let scanned = comparators.iter().copied().find(|c| c.touches(wire));
                assert_eq!(
                    network.comparator_touching(stage, wire),
                    scanned,
                    "{label}: stage {stage}, wire {wire}"
                );
            }
        }
        assert_eq!(
            network.comparator_touching(network.depth(), 0),
            None,
            "{label}"
        );
        assert_eq!(
            network.comparator_touching(0, network.width()),
            None,
            "{label}"
        );
    }

    #[test]
    fn lookup_index_tracks_every_mutation_path() {
        let mut network = three_wire_sorter();
        assert_lookup_consistent(&network, "push_stage");

        network.append_comparators(vec![Comparator::new(1, 2), Comparator::new(0, 1)]);
        assert_lookup_consistent(&network, "append_comparators");

        let truncated = network.truncate(2);
        assert_lookup_consistent(&truncated, "truncate");

        let shifted = network.shift(2, 6);
        assert_lookup_consistent(&shifted, "shift");

        let mut concatenated = three_wire_sorter();
        concatenated.concat(&three_wire_sorter());
        assert_lookup_consistent(&concatenated, "concat");
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn concat_rejects_mismatched_widths() {
        let mut a = ComparatorNetwork::new(2);
        let b = ComparatorNetwork::new(3);
        a.concat(&b);
    }
}
