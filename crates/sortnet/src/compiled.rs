//! Compiled comparator schedules: flat, cache-friendly, O(1) queries.
//!
//! A [`ComparatorSchedule`] answers
//! "which comparator touches wire `w` in stage `s`?" — but the generic
//! implementations answer it slowly: a materialized
//! [`ComparatorNetwork`] historically
//! scanned the stage's comparator list per query, and the default
//! `stage_comparators`/`apply_schedule` methods allocate a fresh `Vec` per
//! stage. On the renaming hot path that query runs once per process per
//! stage, so [`CompiledSchedule`] lowers any schedule into three flat arrays:
//!
//! * `slots` — a `depth × width` wire map: for every `(stage, wire)` cell,
//!   the *dense comparator index* of the comparator touching that wire, or a
//!   sentinel for idle wires. One array load answers the traversal query.
//! * `comparators` — every comparator exactly once, in stage-major order
//!   (the dense index space). Doubles as the per-stage comparator list.
//! * `stage_offsets` — CSR-style offsets into `comparators`, one per stage,
//!   so a stage's comparators are a contiguous slice (no allocation).
//!
//! The dense index is what makes the lock-free comparator slab in the
//! renaming engine possible: a network with `size()` comparators stores its
//! test-and-set objects in a plain array indexed by the compiled slot, with
//! no hashing and no locks on the traversal path.
//!
//! Compilation costs `O(width × depth)` time and memory, so it is meant for
//! the bounded networks processes actually traverse (every materializable
//! network qualifies). The analytic schedules of the §6.1 adaptive
//! construction with astronomical widths stay uncompiled; the adaptive
//! renaming object compiles its small inner sections and falls back to
//! sparse storage for the outer ones.

use crate::network::{Comparator, ComparatorNetwork};
use crate::schedule::ComparatorSchedule;
use std::fmt;

/// Sentinel marking an idle `(stage, wire)` cell in the wire map.
const IDLE: u32 = u32::MAX;

/// A [`ComparatorSchedule`] lowered into flat arrays with O(1) queries and a
/// dense comparator index space.
///
/// # Example
///
/// ```
/// use sortnet::batcher::odd_even_network;
/// use sortnet::compiled::CompiledSchedule;
/// use sortnet::schedule::ComparatorSchedule;
///
/// let network = odd_even_network(8);
/// let compiled = CompiledSchedule::compile(&network);
/// assert_eq!(compiled.width(), 8);
/// assert_eq!(compiled.size(), network.size());
/// // Compiled queries agree with the source schedule everywhere.
/// for stage in 0..compiled.depth() {
///     for wire in 0..compiled.width() {
///         assert_eq!(compiled.comparator_at(stage, wire), network.comparator_at(stage, wire));
///     }
/// }
/// assert_eq!(compiled.apply(&[5, 1, 4, 2, 8, 6, 3, 7]), vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CompiledSchedule {
    width: usize,
    /// Wire map: `slots[stage * width + wire]` is the dense comparator index
    /// touching the wire in the stage, or [`IDLE`].
    slots: Vec<u32>,
    /// Every comparator once, in stage-major order (the dense index space).
    comparators: Vec<Comparator>,
    /// CSR offsets: stage `s` owns `comparators[stage_offsets[s]..stage_offsets[s + 1]]`.
    stage_offsets: Vec<u32>,
}

impl CompiledSchedule {
    /// Lowers a schedule into flat arrays.
    ///
    /// Runs in `O(width × depth)` time and memory — one wire-map cell per
    /// `(stage, wire)` pair. Stages are preserved verbatim, including empty
    /// ones, so stage indices agree with the source schedule.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is wider or deeper than `u32` dense indexing
    /// supports (`width × depth` must fit in memory anyway), or if the
    /// schedule is inconsistent (the two wires of a reported comparator
    /// disagree about it — a violation of the
    /// [`ComparatorSchedule`] contract).
    pub fn compile<S: ComparatorSchedule + ?Sized>(schedule: &S) -> Self {
        let width = schedule.width();
        let depth = schedule.depth();
        let cells = width
            .checked_mul(depth)
            .expect("schedule wire map exceeds the address space");
        let mut slots = vec![IDLE; cells];
        let mut comparators = Vec::new();
        let mut stage_offsets = Vec::with_capacity(depth + 1);
        stage_offsets.push(0u32);
        for stage in 0..depth {
            let row = stage * width;
            for wire in 0..width {
                // The top wire of a comparator is visited first and fills in
                // both cells, so a filled cell needs no second query.
                if slots[row + wire] != IDLE {
                    continue;
                }
                if let Some(comparator) = schedule.comparator_at(stage, wire) {
                    assert_eq!(
                        comparator.top, wire,
                        "schedule reported comparator {comparator} for wire {wire} in stage \
                         {stage} before its top wire — inconsistent comparator_at"
                    );
                    let index = u32::try_from(comparators.len())
                        .expect("more than u32::MAX comparators cannot be compiled");
                    assert!(
                        index != IDLE,
                        "comparator count collides with the idle sentinel"
                    );
                    slots[row + comparator.top] = index;
                    slots[row + comparator.bottom] = index;
                    comparators.push(comparator);
                }
            }
            let end = u32::try_from(comparators.len())
                .expect("more than u32::MAX comparators cannot be compiled");
            stage_offsets.push(end);
        }
        CompiledSchedule {
            width,
            slots,
            comparators,
            stage_offsets,
        }
    }

    /// The total number of comparators — the size of the dense index space
    /// (and of any slab allocated against it).
    pub fn size(&self) -> usize {
        self.comparators.len()
    }

    /// The dense index of the comparator touching `wire` in `stage`, if any.
    ///
    /// This is the O(1) wire-map lookup the renaming traversal runs per
    /// stage; the returned index addresses both [`CompiledSchedule::dense`]
    /// and the comparator slab of a renaming network built over this
    /// schedule.
    #[inline]
    pub fn slot_at(&self, stage: usize, wire: usize) -> Option<usize> {
        if wire >= self.width || stage >= self.depth() {
            return None;
        }
        match self.slots[stage * self.width + wire] {
            IDLE => None,
            slot => Some(slot as usize),
        }
    }

    /// The comparator touching `wire` in `stage` together with its dense
    /// index — the single lookup the traversal loop needs.
    #[inline]
    pub fn pair_at(&self, stage: usize, wire: usize) -> Option<(Comparator, usize)> {
        self.slot_at(stage, wire)
            .map(|slot| (self.comparators[slot], slot))
    }

    /// The comparator with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.size()`.
    #[inline]
    pub fn dense(&self, slot: usize) -> Comparator {
        self.comparators[slot]
    }

    /// All comparators in dense order (stage-major).
    pub fn dense_comparators(&self) -> &[Comparator] {
        &self.comparators
    }

    /// The comparators of one stage as a contiguous slice — no allocation,
    /// unlike the trait's `stage_comparators`. Out-of-range stages yield an
    /// empty slice.
    pub fn stage(&self, stage: usize) -> &[Comparator] {
        if stage >= self.depth() {
            return &[];
        }
        let start = self.stage_offsets[stage] as usize;
        let end = self.stage_offsets[stage + 1] as usize;
        &self.comparators[start..end]
    }

    /// Applies the compiled network to an input sequence without any
    /// per-stage allocation (a single output buffer is cloned from the
    /// input).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.width()`.
    pub fn apply<T: Ord + Clone>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(
            input.len(),
            self.width,
            "input length must equal the schedule width"
        );
        let mut values: Vec<T> = input.to_vec();
        // Stages only matter for parallel hardware; sequentially, the dense
        // stage-major order applies them with one flat pass.
        for comparator in &self.comparators {
            if values[comparator.top] > values[comparator.bottom] {
                values.swap(comparator.top, comparator.bottom);
            }
        }
        values
    }

    /// Rebuilds a materialized [`ComparatorNetwork`] from the dense arrays
    /// (empty stages are dropped, matching
    /// [`ComparatorSchedule::materialize`]).
    pub fn to_network(&self) -> ComparatorNetwork {
        let mut network = ComparatorNetwork::new(self.width);
        for stage in 0..self.depth() {
            let comparators = self.stage(stage);
            if !comparators.is_empty() {
                network.push_stage(comparators.to_vec());
            }
        }
        network
    }

    /// Approximate heap footprint of the flat arrays, in bytes (harness
    /// inspection; useful when deciding whether a schedule is worth
    /// compiling).
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
            + self.comparators.len() * std::mem::size_of::<Comparator>()
            + self.stage_offsets.len() * std::mem::size_of::<u32>()
    }
}

impl ComparatorSchedule for CompiledSchedule {
    fn width(&self) -> usize {
        self.width
    }

    fn depth(&self) -> usize {
        self.stage_offsets.len() - 1
    }

    fn comparator_at(&self, stage: usize, wire: usize) -> Option<Comparator> {
        self.slot_at(stage, wire).map(|slot| self.comparators[slot])
    }

    fn stage_comparators(&self, stage: usize) -> Vec<Comparator> {
        self.stage(stage).to_vec()
    }
}

impl fmt::Debug for CompiledSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledSchedule")
            .field("width", &self.width)
            .field("depth", &self.depth())
            .field("size", &self.size())
            .field("memory_bytes", &self.memory_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{odd_even_network, OddEvenSchedule};
    use crate::bitonic::bitonic_network;
    use crate::transposition::transposition_network;
    use crate::verify::is_sorting_network_exhaustive;

    fn assert_agrees<S: ComparatorSchedule>(source: &S, label: &str) {
        let compiled = CompiledSchedule::compile(source);
        assert_eq!(compiled.width(), source.width(), "{label}: width");
        assert_eq!(compiled.depth(), source.depth(), "{label}: depth");
        for stage in 0..source.depth() {
            assert_eq!(
                compiled.stage(stage).to_vec(),
                source.stage_comparators(stage),
                "{label}: stage {stage} comparators"
            );
            for wire in 0..source.width() {
                assert_eq!(
                    compiled.comparator_at(stage, wire),
                    source.comparator_at(stage, wire),
                    "{label}: ({stage}, {wire})"
                );
            }
        }
    }

    #[test]
    fn compiled_odd_even_networks_agree_with_their_source() {
        for width in [2usize, 3, 7, 8, 16, 33, 64] {
            assert_agrees(&odd_even_network(width), &format!("odd-even {width}"));
        }
    }

    #[test]
    fn compiled_analytic_schedules_agree_with_their_source() {
        for width in [2usize, 5, 8, 24, 32] {
            assert_agrees(&OddEvenSchedule::new(width), &format!("analytic {width}"));
        }
    }

    #[test]
    fn compiled_bitonic_and_transposition_networks_agree() {
        for width in [2usize, 6, 8, 16, 19] {
            assert_agrees(&bitonic_network(width), &format!("bitonic {width}"));
            assert_agrees(
                &transposition_network(width),
                &format!("transposition {width}"),
            );
        }
    }

    #[test]
    fn dense_indices_are_stage_major_and_complete() {
        let network = odd_even_network(16);
        let compiled = CompiledSchedule::compile(&network);
        assert_eq!(compiled.size(), network.size());
        assert_eq!(compiled.dense_comparators().len(), compiled.size());
        // Every (stage, wire) the source reports busy has a slot; slots of
        // one stage form a contiguous dense range.
        let mut seen = vec![false; compiled.size()];
        for stage in 0..compiled.depth() {
            let start = compiled.stage_offsets[stage] as usize;
            let end = compiled.stage_offsets[stage + 1] as usize;
            for wire in 0..compiled.width() {
                if let Some(slot) = compiled.slot_at(stage, wire) {
                    assert!((start..end).contains(&slot), "stage {stage} wire {wire}");
                    assert_eq!(
                        compiled.dense(slot),
                        network.comparator_at(stage, wire).unwrap()
                    );
                    seen[slot] = true;
                }
            }
        }
        assert!(seen.into_iter().all(|s| s), "every dense slot is reachable");
    }

    #[test]
    fn pair_at_returns_comparator_and_slot_together() {
        let compiled = CompiledSchedule::compile(&odd_even_network(8));
        let (comparator, slot) = compiled.pair_at(0, 0).unwrap();
        assert!(comparator.touches(0));
        assert_eq!(compiled.dense(slot), comparator);
        assert_eq!(
            compiled.pair_at(0, 0),
            compiled.pair_at(0, comparator.bottom)
        );
        assert_eq!(compiled.pair_at(99, 0), None, "stage out of range");
        assert_eq!(compiled.pair_at(0, 99), None, "wire out of range");
    }

    #[test]
    fn apply_matches_the_source_network() {
        let network = odd_even_network(13);
        let compiled = CompiledSchedule::compile(&network);
        let input: Vec<i32> = vec![7, -2, 9, 4, 4, 0, 12, -8, 3, 5, 1, 6, 2];
        assert_eq!(compiled.apply(&input), network.apply(&input));
        let mut sorted = input.clone();
        sorted.sort_unstable();
        assert_eq!(compiled.apply(&input), sorted);
    }

    #[test]
    fn compiled_schedule_is_itself_a_sorting_network() {
        let compiled = CompiledSchedule::compile(&odd_even_network(8));
        assert!(is_sorting_network_exhaustive(&compiled.to_network()));
        // And the trait-level application works too.
        assert_eq!(
            compiled.apply_schedule(&[3, 1, 2, 8, 5, 4, 7, 6]),
            vec![1, 2, 3, 4, 5, 6, 7, 8]
        );
    }

    #[test]
    fn round_trip_preserves_the_network() {
        let network = odd_even_network(12);
        let compiled = CompiledSchedule::compile(&network);
        assert_eq!(compiled.to_network(), network);
    }

    #[test]
    fn debug_reports_dimensions() {
        let compiled = CompiledSchedule::compile(&odd_even_network(8));
        let rendered = format!("{compiled:?}");
        assert!(rendered.contains("CompiledSchedule"));
        assert!(rendered.contains("size"));
        assert!(compiled.memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn apply_rejects_wrong_width() {
        CompiledSchedule::compile(&odd_even_network(8)).apply(&[1, 2, 3]);
    }
}
