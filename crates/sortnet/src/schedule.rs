//! The comparator-schedule abstraction.
//!
//! A renaming network never needs the full list of comparators: a process at
//! wire `w` only ever asks "which comparator, if any, touches my wire in the
//! next stage?". [`ComparatorSchedule`] captures exactly that query, which
//! allows very wide networks (the §6.1 adaptive construction truncated at
//! tens of thousands of ports) to be used without materializing millions of
//! comparators: analytic schedules compute the answer arithmetically.

use crate::network::{Comparator, ComparatorNetwork};
use std::sync::Arc;

/// A stage-by-stage description of a comparator network.
///
/// Implementors must guarantee the usual comparator-network well-formedness:
/// within one stage, each wire is touched by at most one comparator, and
/// `comparator_at(s, w)` agrees for both wires of the comparator it reports.
pub trait ComparatorSchedule: Send + Sync {
    /// Number of wires.
    fn width(&self) -> usize;

    /// Number of stages.
    fn depth(&self) -> usize;

    /// The comparator touching `wire` in `stage`, if any.
    ///
    /// Returns `None` when the wire is idle in that stage, when the stage is
    /// out of range, or when the wire is out of range.
    fn comparator_at(&self, stage: usize, wire: usize) -> Option<Comparator>;

    /// All comparators of one stage, derived by scanning the wires.
    fn stage_comparators(&self, stage: usize) -> Vec<Comparator> {
        let mut comparators = Vec::new();
        for wire in 0..self.width() {
            if let Some(c) = self.comparator_at(stage, wire) {
                if c.top == wire {
                    comparators.push(c);
                }
            }
        }
        comparators
    }

    /// Applies the schedule to an input sequence (smaller values move to
    /// lower-indexed wires).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.width()`.
    fn apply_schedule<T: Ord + Clone>(&self, input: &[T]) -> Vec<T>
    where
        Self: Sized,
    {
        assert_eq!(
            input.len(),
            self.width(),
            "input length must equal the schedule width"
        );
        let mut values: Vec<T> = input.to_vec();
        for stage in 0..self.depth() {
            for comparator in self.stage_comparators(stage) {
                if values[comparator.top] > values[comparator.bottom] {
                    values.swap(comparator.top, comparator.bottom);
                }
            }
        }
        values
    }

    /// Materializes the schedule into a [`ComparatorNetwork`].
    fn materialize(&self) -> ComparatorNetwork
    where
        Self: Sized,
    {
        let mut network = ComparatorNetwork::new(self.width());
        for stage in 0..self.depth() {
            let comparators = self.stage_comparators(stage);
            if !comparators.is_empty() {
                network.push_stage(comparators);
            }
        }
        network
    }
}

impl ComparatorSchedule for ComparatorNetwork {
    fn width(&self) -> usize {
        ComparatorNetwork::width(self)
    }

    fn depth(&self) -> usize {
        ComparatorNetwork::depth(self)
    }

    fn comparator_at(&self, stage: usize, wire: usize) -> Option<Comparator> {
        // O(1) through the network's per-wire lookup index.
        self.comparator_touching(stage, wire)
    }
}

/// Forwarding impl so shared schedules — in particular the
/// `Arc<dyn ComparatorSchedule>` produced by
/// [`SortingFamily::schedule`](crate::family::SortingFamily::schedule) — can
/// be used wherever an owned schedule is expected (e.g. as the schedule of a
/// renaming network chosen at runtime by a builder).
impl<S: ComparatorSchedule + ?Sized> ComparatorSchedule for Arc<S> {
    fn width(&self) -> usize {
        (**self).width()
    }

    fn depth(&self) -> usize {
        (**self).depth()
    }

    fn comparator_at(&self, stage: usize, wire: usize) -> Option<Comparator> {
        (**self).comparator_at(stage, wire)
    }

    fn stage_comparators(&self, stage: usize) -> Vec<Comparator> {
        (**self).stage_comparators(stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorter3() -> ComparatorNetwork {
        let mut network = ComparatorNetwork::new(3);
        network.push_stage(vec![Comparator::new(0, 1)]);
        network.push_stage(vec![Comparator::new(1, 2)]);
        network.push_stage(vec![Comparator::new(0, 1)]);
        network
    }

    #[test]
    fn materialized_network_answers_comparator_queries() {
        let network = sorter3();
        assert_eq!(network.comparator_at(0, 0), Some(Comparator::new(0, 1)));
        assert_eq!(network.comparator_at(0, 1), Some(Comparator::new(0, 1)));
        assert_eq!(network.comparator_at(0, 2), None);
        assert_eq!(network.comparator_at(1, 0), None);
        assert_eq!(network.comparator_at(7, 0), None, "stage out of range");
    }

    #[test]
    fn stage_comparators_lists_each_comparator_once() {
        let network = sorter3();
        assert_eq!(network.stage_comparators(0), vec![Comparator::new(0, 1)]);
        assert_eq!(network.stage_comparators(1), vec![Comparator::new(1, 2)]);
        assert!(network.stage_comparators(9).is_empty());
    }

    #[test]
    fn apply_schedule_matches_direct_application() {
        let network = sorter3();
        let input = [9, 1, 5];
        assert_eq!(network.apply_schedule(&input), network.apply(&input));
    }

    #[test]
    fn materialize_round_trips_a_network() {
        let network = sorter3();
        let rebuilt = network.materialize();
        assert_eq!(rebuilt.width(), 3);
        assert_eq!(rebuilt.size(), 3);
        assert_eq!(rebuilt.apply(&[2, 3, 1]), vec![1, 2, 3]);
    }
}
