//! The periodic balanced sorting network (Dowd–Perl–Rudolph–Saks).
//!
//! The periodic network on `w = 2^m` wires consists of `m` identical
//! *blocks*, each of depth `m`: layer `t` of a block (counting from 1)
//! compares every wire `i` with the wire obtained by complementing the low
//! `m − t + 1` bits of `i`. The first layer therefore folds each
//! `2^(m−t+1)`-wide group onto itself in the "triangle" pattern, and later
//! layers repeat the fold within smaller groups. The resulting network sorts
//! in `Θ(log² w)` depth — the same asymptotics as Batcher's constructions —
//! and its perfectly periodic structure is what made it attractive for
//! hardware.
//!
//! The family earns its place in this workspace for a second reason: the
//! periodic wiring is the classical *counting network* of Aspnes, Herlihy
//! and Shavit. Reinterpreting its comparators as balancers (the `cnet`
//! crate) yields a quiescently-consistent counter, which is **not** true of
//! every sorting network — Batcher's odd-even merge and the one-pass
//! odd-even transposition wirings both violate the step property (pinned by
//! regression tests in `cnet`). Bitonic and periodic are the two wirings
//! this workspace certifies for counting.

use crate::network::{Comparator, ComparatorNetwork};

/// Builds one periodic block on `width = 2^m` wires: `m` layers, layer `t`
/// comparing wire `i` with `i` XOR a low-bit mask of `m − t + 1` ones.
fn push_block(network: &mut ComparatorNetwork, width: usize) {
    let levels = width.trailing_zeros();
    for level in (1..=levels).rev() {
        let mask = (1usize << level) - 1;
        let mut stage = Vec::with_capacity(width / 2);
        for wire in 0..width {
            let partner = wire ^ mask;
            if partner > wire {
                stage.push(Comparator::new(wire, partner));
            }
        }
        network.push_stage(stage);
    }
}

/// Builds the periodic balanced sorting network on `width` wires: `log₂ w`
/// identical blocks of depth `log₂ w` each. Non-power-of-two widths are
/// obtained by truncating the next-power-of-two network, exactly as in
/// [`bitonic_network`](crate::bitonic::bitonic_network).
///
/// # Panics
///
/// Panics if `width < 2`.
///
/// # Example
///
/// ```
/// use sortnet::periodic::periodic_network;
///
/// let network = periodic_network(8);
/// assert_eq!(network.depth(), 9); // log₂ 8 blocks of depth log₂ 8
/// assert_eq!(network.apply(&[8, 7, 6, 5, 4, 3, 2, 1]), vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// ```
pub fn periodic_network(width: usize) -> ComparatorNetwork {
    assert!(width >= 2, "a sorting network needs at least two wires");
    let phys = width.next_power_of_two();
    let mut network = ComparatorNetwork::new(phys);
    for _ in 0..phys.trailing_zeros() {
        push_block(&mut network, phys);
    }
    if width == phys {
        network
    } else {
        network.truncate(width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_sorting_network_exhaustive;

    #[test]
    fn power_of_two_widths_sort_exhaustively() {
        for width in [2usize, 4, 8, 16] {
            assert!(
                is_sorting_network_exhaustive(&periodic_network(width)),
                "width {width}"
            );
        }
    }

    #[test]
    fn truncated_widths_sort_exhaustively() {
        for width in [3usize, 5, 6, 7, 9, 12, 13, 15] {
            assert!(
                is_sorting_network_exhaustive(&periodic_network(width)),
                "width {width}"
            );
        }
    }

    #[test]
    fn depth_is_log_squared_for_powers_of_two() {
        for exponent in 1..=8u32 {
            let width = 1usize << exponent;
            assert_eq!(
                periodic_network(width).depth(),
                (exponent * exponent) as usize,
                "width {width}"
            );
        }
    }

    #[test]
    fn blocks_are_identical() {
        let width = 8usize;
        let network = periodic_network(width);
        let block_depth = width.trailing_zeros() as usize;
        use crate::schedule::ComparatorSchedule;
        for stage in 0..block_depth {
            for block in 1..block_depth {
                assert_eq!(
                    network.stage_comparators(stage),
                    network.stage_comparators(block * block_depth + stage),
                    "block {block}, stage {stage}"
                );
            }
        }
    }

    #[test]
    fn first_layer_is_the_triangle_fold() {
        let network = periodic_network(8);
        use crate::schedule::ComparatorSchedule;
        assert_eq!(
            network.stage_comparators(0),
            vec![
                Comparator::new(0, 7),
                Comparator::new(1, 6),
                Comparator::new(2, 5),
                Comparator::new(3, 4),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "at least two wires")]
    fn width_one_is_rejected() {
        let _ = periodic_network(1);
    }
}
