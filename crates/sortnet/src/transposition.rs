//! Odd-even transposition ("brick wall") sorting network.
//!
//! A `Θ(n)`-depth sorting network over min-up comparators, used as a simple,
//! obviously correct reference network in tests and as a deliberately
//! non-scalable baseline in the depth experiments (E13).

use crate::network::{Comparator, ComparatorNetwork};

/// Builds the odd-even transposition network on `width` wires: `width`
/// stages alternating between comparators on even and odd adjacent pairs.
///
/// # Panics
///
/// Panics if `width < 2`.
///
/// # Example
///
/// ```
/// use sortnet::transposition::transposition_network;
///
/// let network = transposition_network(5);
/// assert_eq!(network.apply(&[5, 4, 3, 2, 1]), vec![1, 2, 3, 4, 5]);
/// assert_eq!(network.depth(), 5);
/// ```
pub fn transposition_network(width: usize) -> ComparatorNetwork {
    assert!(width >= 2, "a sorting network needs at least two wires");
    let mut network = ComparatorNetwork::new(width);
    for stage_index in 0..width {
        let mut stage = Vec::new();
        let mut wire = stage_index % 2;
        while wire + 1 < width {
            stage.push(Comparator::new(wire, wire + 1));
            wire += 2;
        }
        if !stage.is_empty() {
            network.push_stage(stage);
        }
    }
    network
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_sorting_network_exhaustive;

    #[test]
    fn sorts_exhaustively_for_small_widths() {
        for width in 2..=12usize {
            assert!(
                is_sorting_network_exhaustive(&transposition_network(width)),
                "width {width}"
            );
        }
    }

    #[test]
    fn depth_is_linear_in_width() {
        for width in [2usize, 5, 9, 16] {
            let network = transposition_network(width);
            assert!(
                network.depth() >= width - 1 && network.depth() <= width,
                "width {width}: depth {}",
                network.depth()
            );
        }
    }

    #[test]
    fn size_is_quadratic_in_width() {
        let network = transposition_network(8);
        // 8 stages alternating 4 and 3 comparators.
        assert_eq!(network.size(), 4 * 4 + 4 * 3);
    }

    #[test]
    #[should_panic(expected = "at least two wires")]
    fn width_one_is_rejected() {
        let _ = transposition_network(1);
    }
}
