//! Named sorting-network families.
//!
//! The renaming-network results are parameterized by the underlying sorting
//! network: AKS gives the optimal `O(log n)` depth (`c = 1` in the paper's
//! notation) but is impractical; Batcher's constructible networks give
//! `O(log² n)` (`c = 2`). [`SortingFamily`] abstracts the choice so the core
//! crate's renaming networks, the §6.1 adaptive construction and the
//! experiments can swap families freely, and [`aks_depth_estimate`] provides
//! the idealized AKS depth curve for analytic comparison (Experiment E13).

use crate::batcher::OddEvenSchedule;
use crate::bitonic::bitonic_network;
use crate::periodic::periodic_network;
use crate::schedule::ComparatorSchedule;
use crate::transposition::transposition_network;
use std::fmt;
use std::sync::Arc;

/// A family of sorting networks, one per width.
pub trait SortingFamily: Send + Sync {
    /// Human-readable family name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// The exponent `c` such that the family's depth is `Θ(log^c n)`
    /// (1 for AKS, 2 for Batcher's networks, `∞`-ish for transposition —
    /// reported as `0` meaning "not polylogarithmic").
    fn depth_exponent(&self) -> u32;

    /// Builds the comparator schedule for a network of the given width.
    ///
    /// # Panics
    ///
    /// Implementations panic if `width < 2`.
    fn schedule(&self, width: usize) -> Arc<dyn ComparatorSchedule>;

    /// The depth of the family's network at the given width.
    fn depth(&self, width: usize) -> usize {
        self.schedule(width).depth()
    }
}

impl fmt::Debug for dyn SortingFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SortingFamily({})", self.name())
    }
}

/// The built-in sorting-network families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NetworkFamily {
    /// Batcher's odd-even mergesort (analytic schedule, `Θ(log² n)` depth).
    /// The default basis for renaming networks in this crate.
    OddEven,
    /// Batcher's bitonic sorter, ascending-comparator variant (materialized,
    /// `Θ(log² n)` depth).
    Bitonic,
    /// The Dowd–Perl–Rudolph–Saks periodic balanced network (materialized,
    /// `Θ(log² n)` depth, `log n` identical blocks). Together with
    /// [`NetworkFamily::Bitonic`] it is one of the two wirings certified as a
    /// *counting network* when its comparators are reinterpreted as balancers
    /// (the `cnet` crate).
    Periodic,
    /// Odd-even transposition (materialized, `Θ(n)` depth). Reference /
    /// worst-case baseline only.
    Transposition,
}

impl NetworkFamily {
    /// All built-in families, in the order experiments report them.
    pub fn all() -> [NetworkFamily; 4] {
        [
            NetworkFamily::OddEven,
            NetworkFamily::Bitonic,
            NetworkFamily::Periodic,
            NetworkFamily::Transposition,
        ]
    }
}

impl Default for NetworkFamily {
    /// Batcher's odd-even mergesort — the default basis of the renaming
    /// networks throughout the workspace.
    fn default() -> Self {
        NetworkFamily::OddEven
    }
}

impl std::str::FromStr for NetworkFamily {
    type Err = String;

    /// Parses a family name as reported by [`SortingFamily::name`]
    /// (`"odd-even-merge"`, `"bitonic"`, `"transposition"`), accepting the
    /// common short forms `"odd-even"` and `"odd_even"`. Used by builders and
    /// experiment binaries that select the family from configuration.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "odd-even-merge" | "odd-even" | "odd_even" | "oddeven" | "batcher" => {
                Ok(NetworkFamily::OddEven)
            }
            "bitonic" => Ok(NetworkFamily::Bitonic),
            "periodic" | "dprs" | "balanced" => Ok(NetworkFamily::Periodic),
            "transposition" => Ok(NetworkFamily::Transposition),
            other => Err(format!(
                "unknown sorting-network family {other:?} \
                 (expected odd-even-merge, bitonic, periodic or transposition)"
            )),
        }
    }
}

impl fmt::Display for NetworkFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl SortingFamily for NetworkFamily {
    fn name(&self) -> &'static str {
        match self {
            NetworkFamily::OddEven => "odd-even-merge",
            NetworkFamily::Bitonic => "bitonic",
            NetworkFamily::Periodic => "periodic",
            NetworkFamily::Transposition => "transposition",
        }
    }

    fn depth_exponent(&self) -> u32 {
        match self {
            NetworkFamily::OddEven | NetworkFamily::Bitonic | NetworkFamily::Periodic => 2,
            NetworkFamily::Transposition => 0,
        }
    }

    fn schedule(&self, width: usize) -> Arc<dyn ComparatorSchedule> {
        match self {
            NetworkFamily::OddEven => Arc::new(OddEvenSchedule::new(width)),
            NetworkFamily::Bitonic => Arc::new(bitonic_network(width)),
            NetworkFamily::Periodic => Arc::new(periodic_network(width)),
            NetworkFamily::Transposition => Arc::new(transposition_network(width)),
        }
    }
}

/// The idealized depth of an AKS sorting network of the given width, with a
/// unit constant: `log₂ width`.
///
/// Real AKS constructions have enormous constant factors (the paper calls
/// them "impractical"); this oracle exists so experiment E13 can plot the
/// `Θ(log n)` shape the paper's optimal bound assumes next to the measured
/// depths of the constructible families. It cannot be built or executed.
pub fn aks_depth_estimate(width: usize) -> f64 {
    if width <= 1 {
        0.0
    } else {
        (width as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::schedule_sorts_exhaustive;

    #[test]
    fn every_family_produces_sorting_networks() {
        for family in NetworkFamily::all() {
            for width in [2usize, 5, 8, 13] {
                let schedule = family.schedule(width);
                assert_eq!(schedule.width(), width);
                assert!(schedule.depth() > 0);
                // Verify via an owned materialization (the trait object can't
                // use the generic helper directly).
                let network = {
                    let mut materialized = crate::network::ComparatorNetwork::new(width);
                    for stage in 0..schedule.depth() {
                        let comparators = schedule.stage_comparators(stage);
                        if !comparators.is_empty() {
                            materialized.push_stage(comparators);
                        }
                    }
                    materialized
                };
                assert!(
                    schedule_sorts_exhaustive(&network),
                    "{} width {width}",
                    family.name()
                );
            }
        }
    }

    #[test]
    fn depth_exponents_and_names_are_reported() {
        assert_eq!(NetworkFamily::OddEven.depth_exponent(), 2);
        assert_eq!(NetworkFamily::Bitonic.depth_exponent(), 2);
        assert_eq!(NetworkFamily::Periodic.depth_exponent(), 2);
        assert_eq!(NetworkFamily::Transposition.depth_exponent(), 0);
        assert_eq!(NetworkFamily::Periodic.to_string(), "periodic");
        assert_eq!(NetworkFamily::OddEven.to_string(), "odd-even-merge");
        assert_eq!(format!("{:?}", NetworkFamily::Bitonic), "Bitonic");
    }

    #[test]
    fn family_names_round_trip_through_from_str() {
        for family in NetworkFamily::all() {
            assert_eq!(family.name().parse::<NetworkFamily>(), Ok(family));
        }
        assert_eq!(
            "odd-even".parse::<NetworkFamily>(),
            Ok(NetworkFamily::OddEven)
        );
        assert_eq!(
            " Bitonic ".parse::<NetworkFamily>(),
            Ok(NetworkFamily::Bitonic)
        );
        assert!("aks".parse::<NetworkFamily>().is_err());
        assert_eq!(NetworkFamily::default(), NetworkFamily::OddEven);
    }

    #[test]
    fn arc_schedules_forward_all_queries() {
        let family = NetworkFamily::OddEven;
        let shared = family.schedule(8);
        let owned = OddEvenSchedule::new(8);
        assert_eq!(ComparatorSchedule::width(&shared), owned.width());
        assert_eq!(ComparatorSchedule::depth(&shared), owned.depth());
        for stage in 0..owned.depth() {
            assert_eq!(
                shared.stage_comparators(stage),
                owned.stage_comparators(stage)
            );
            for wire in 0..owned.width() {
                assert_eq!(
                    shared.comparator_at(stage, wire),
                    owned.comparator_at(stage, wire)
                );
            }
        }
    }

    #[test]
    fn constructible_families_have_polylog_depth_while_transposition_does_not() {
        let width = 128;
        let odd_even = NetworkFamily::OddEven.depth(width);
        let bitonic = NetworkFamily::Bitonic.depth(width);
        let periodic = NetworkFamily::Periodic.depth(width);
        let transposition = NetworkFamily::Transposition.depth(width);
        assert_eq!(odd_even, 28); // 7 * 8 / 2
        assert_eq!(bitonic, 28);
        assert_eq!(periodic, 49); // 7 blocks of depth 7
        assert!(transposition >= width - 1);
    }

    #[test]
    fn aks_depth_estimate_is_logarithmic() {
        assert_eq!(aks_depth_estimate(1), 0.0);
        assert!((aks_depth_estimate(1024) - 10.0).abs() < 1e-9);
        assert!(aks_depth_estimate(1 << 20) < NetworkFamily::OddEven.depth(1 << 10) as f64);
    }
}
