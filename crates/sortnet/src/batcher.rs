//! Batcher's odd-even mergesort.
//!
//! Odd-even mergesort is the classic *constructible* sorting network: depth
//! `O(log² n)` with small constants, built from min-up comparators only. The
//! paper recommends exactly this trade-off — "an alternative would be to use
//! constructible networks such as bitonic networks; this trades
//! constructibility for a logarithmic increase in running time" (§1) — so this
//! family is the default basis of our renaming networks and of the §6.1
//! adaptive construction.
//!
//! Two representations are provided:
//!
//! * [`odd_even_network`] — a materialized [`ComparatorNetwork`].
//! * [`OddEvenSchedule`] — an analytic [`ComparatorSchedule`] that computes
//!   `comparator_at(stage, wire)` arithmetically, allowing widths in the tens
//!   of thousands (as required by the adaptive construction's outer levels)
//!   without materializing millions of comparators.
//!
//! Networks of arbitrary (non-power-of-two) width are obtained by truncating
//! the next-power-of-two network; truncation preserves the sorting property
//! because dropped wires behave like `+∞` inputs that min-up comparators never
//! move upward.

use crate::network::{Comparator, ComparatorNetwork};
use crate::schedule::ComparatorSchedule;

/// Returns `true` if stage `(p, k)` of the odd-even mergesort network on
/// `phys` (power-of-two) wires contains the comparator `(a, a + k)`, and
/// that comparator survives truncation to `width` wires.
fn is_lower_wire(phys: usize, width: usize, p: usize, k: usize, a: usize) -> bool {
    debug_assert!(phys.is_power_of_two());
    let j0 = k % p;
    a + k < width
        && a + k < phys
        && a >= j0
        && (a - j0) % (2 * k) < k
        && a / (2 * p) == (a + k) / (2 * p)
}

/// The `(p, k)` parameters of every stage, in execution order.
fn stage_parameters(phys: usize) -> Vec<(usize, usize)> {
    let mut parameters = Vec::new();
    let mut p = 1;
    while p < phys {
        let mut k = p;
        while k >= 1 {
            parameters.push((p, k));
            k /= 2;
        }
        p *= 2;
    }
    parameters
}

/// An analytic comparator schedule for Batcher's odd-even mergesort on
/// `width` wires.
///
/// # Example
///
/// ```
/// use sortnet::batcher::OddEvenSchedule;
/// use sortnet::schedule::ComparatorSchedule;
///
/// let schedule = OddEvenSchedule::new(8);
/// assert_eq!(schedule.width(), 8);
/// assert_eq!(schedule.depth(), 6); // log2(8) * (log2(8) + 1) / 2
/// assert_eq!(schedule.apply_schedule(&[4, 2, 7, 1, 8, 3, 6, 5]),
///            vec![1, 2, 3, 4, 5, 6, 7, 8]);
/// ```
#[derive(Clone, Debug)]
pub struct OddEvenSchedule {
    width: usize,
    phys: usize,
    stages: Vec<(usize, usize)>,
}

impl OddEvenSchedule {
    /// Creates the schedule for `width` wires.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2`.
    pub fn new(width: usize) -> Self {
        assert!(width >= 2, "a sorting network needs at least two wires");
        let phys = width.next_power_of_two();
        OddEvenSchedule {
            width,
            phys,
            stages: stage_parameters(phys),
        }
    }

    /// The power-of-two width of the untruncated underlying network.
    pub fn physical_width(&self) -> usize {
        self.phys
    }
}

impl ComparatorSchedule for OddEvenSchedule {
    fn width(&self) -> usize {
        self.width
    }

    fn depth(&self) -> usize {
        self.stages.len()
    }

    fn comparator_at(&self, stage: usize, wire: usize) -> Option<Comparator> {
        let &(p, k) = self.stages.get(stage)?;
        if wire >= self.width {
            return None;
        }
        if is_lower_wire(self.phys, self.width, p, k, wire) {
            return Some(Comparator::new(wire, wire + k));
        }
        if wire >= k && is_lower_wire(self.phys, self.width, p, k, wire - k) {
            return Some(Comparator::new(wire - k, wire));
        }
        None
    }
}

/// Builds a materialized odd-even mergesort network on `width` wires.
///
/// # Panics
///
/// Panics if `width < 2`.
///
/// # Example
///
/// ```
/// use sortnet::batcher::odd_even_network;
///
/// let network = odd_even_network(6);
/// assert_eq!(network.apply(&[6, 5, 4, 3, 2, 1]), vec![1, 2, 3, 4, 5, 6]);
/// ```
pub fn odd_even_network(width: usize) -> ComparatorNetwork {
    OddEvenSchedule::new(width).materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_sorting_network_exhaustive, schedule_sorts_exhaustive};

    #[test]
    fn power_of_two_networks_sort_exhaustively() {
        for width in [2usize, 4, 8, 16] {
            let network = odd_even_network(width);
            assert!(
                is_sorting_network_exhaustive(&network),
                "width {width} failed the zero-one principle"
            );
        }
    }

    #[test]
    fn truncated_networks_sort_exhaustively() {
        for width in [3usize, 5, 6, 7, 9, 11, 13, 15, 17] {
            let network = odd_even_network(width);
            assert!(
                is_sorting_network_exhaustive(&network),
                "width {width} failed the zero-one principle"
            );
        }
    }

    #[test]
    fn analytic_schedule_sorts_exhaustively() {
        for width in [2usize, 3, 4, 6, 8, 12, 16] {
            let schedule = OddEvenSchedule::new(width);
            assert!(
                schedule_sorts_exhaustive(&schedule),
                "width {width} failed the zero-one principle"
            );
        }
    }

    #[test]
    fn analytic_schedule_matches_materialized_network() {
        for width in [4usize, 7, 8, 13, 16, 20] {
            let schedule = OddEvenSchedule::new(width);
            let network = odd_even_network(width);
            // Same multiset of comparators per (p, k) stage; the materialized
            // network drops empty stages, so compare via full materialization.
            let rebuilt = schedule.materialize();
            assert_eq!(rebuilt, network, "width {width}");
        }
    }

    #[test]
    fn depth_follows_the_log_squared_formula() {
        for exponent in 1..=10u32 {
            let width = 1usize << exponent;
            let schedule = OddEvenSchedule::new(width);
            let expected = (exponent * (exponent + 1) / 2) as usize;
            assert_eq!(schedule.depth(), expected, "width {width}");
        }
    }

    #[test]
    fn schedule_is_consistent_between_both_wires_of_a_comparator() {
        let schedule = OddEvenSchedule::new(32);
        for stage in 0..schedule.depth() {
            for wire in 0..schedule.width() {
                if let Some(c) = schedule.comparator_at(stage, wire) {
                    assert!(c.touches(wire));
                    let peer = schedule.comparator_at(stage, c.other(wire));
                    assert_eq!(peer, Some(c), "stage {stage}, wire {wire}");
                }
            }
        }
    }

    #[test]
    fn very_wide_schedules_are_cheap_to_construct() {
        // The analytic schedule for a 2^20-wire network must not materialize
        // anything: constructing it and probing a few comparators is instant.
        let schedule = OddEvenSchedule::new(1 << 20);
        assert_eq!(schedule.depth(), 20 * 21 / 2);
        assert_eq!(schedule.physical_width(), 1 << 20);
        let mut found = 0;
        for stage in 0..schedule.depth() {
            if schedule.comparator_at(stage, 123_456).is_some() {
                found += 1;
            }
        }
        assert!(found > 0, "wire 123456 must meet at least one comparator");
    }

    #[test]
    #[should_panic(expected = "at least two wires")]
    fn width_one_is_rejected() {
        let _ = OddEvenSchedule::new(1);
    }

    #[test]
    fn sorts_random_integer_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for width in [5usize, 16, 33, 64] {
            let network = odd_even_network(width);
            for _ in 0..20 {
                let input: Vec<u32> = (0..width).map(|_| rng.gen_range(0..1000)).collect();
                let mut expected = input.clone();
                expected.sort_unstable();
                assert_eq!(network.apply(&input), expected, "width {width}");
            }
        }
    }
}
