//! Comparator and sorting networks.
//!
//! The renaming networks of the PODC 2011 paper are sorting networks whose
//! comparators have been replaced by two-process test-and-set objects (§5).
//! This crate provides the sorting-network substrate:
//!
//! * [`network`] — materialized comparator networks: stages of disjoint
//!   comparators, application to inputs, depth/size metrics.
//! * [`schedule`] — the [`ComparatorSchedule`]
//!   abstraction: "which comparator (if any) touches wire `w` in stage `s`?".
//!   Analytic schedules answer it arithmetically, so arbitrarily wide
//!   networks (the adaptive construction's outer levels) can be queried
//!   without materializing millions of comparators.
//! * [`compiled`] — [`CompiledSchedule`]: any
//!   schedule lowered into flat wire-map + dense-comparator arrays with O(1)
//!   queries and a dense index space, the substrate of the lock-free
//!   comparator slab in the renaming engine.
//! * [`batcher`] — Batcher's odd-even mergesort, both materialized and as an
//!   analytic schedule; the constructible `O(log² n)`-depth family the paper
//!   suggests in place of the impractical AKS network.
//! * [`bitonic`] — an ascending-comparator variant of Batcher's bitonic
//!   sorter (materialized).
//! * [`transposition`] — the odd-even transposition ("brick wall") network,
//!   a simple `Θ(n)`-depth reference network used in tests.
//! * [`adaptive`] — the paper's §6.1 recursive "sandwich" construction of an
//!   unbounded-width sorting network whose truncations are sorting networks
//!   and in which a value entering wire `n` and leaving wire `m` traverses
//!   only `O(log^c max(n, m))` comparators.
//! * [`family`] — named network families with depth formulas (including the
//!   AKS depth oracle used for analytic comparisons).
//! * [`verify`] — zero-one-principle verification, exhaustive and randomized.
//!
//! # Example
//!
//! ```
//! use sortnet::batcher::odd_even_network;
//! use sortnet::verify::is_sorting_network_exhaustive;
//!
//! let network = odd_even_network(8);
//! assert!(is_sorting_network_exhaustive(&network));
//! assert_eq!(network.apply(&[5, 3, 8, 1, 9, 2, 7, 4]), vec![1, 2, 3, 4, 5, 7, 8, 9]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod batcher;
pub mod bitonic;
pub mod compiled;
pub mod family;
pub mod network;
pub mod periodic;
pub mod schedule;
pub mod transposition;
pub mod verify;

pub use adaptive::AdaptiveNetwork;
pub use batcher::{odd_even_network, OddEvenSchedule};
pub use bitonic::bitonic_network;
pub use compiled::CompiledSchedule;
pub use family::{aks_depth_estimate, NetworkFamily, SortingFamily};
pub use network::{Comparator, ComparatorNetwork};
pub use periodic::periodic_network;
pub use schedule::ComparatorSchedule;
pub use transposition::transposition_network;
