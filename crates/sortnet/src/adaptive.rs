//! The paper's §6.1 adaptive sorting-network construction.
//!
//! The construction starts from a two-wire network `S₀` and repeatedly
//! "sandwiches" it: `S_{k+1}` is obtained by placing a sorting network
//! `A_{k+1}` before `S_k` and a sorting network `C_{k+1}` after it, where
//! `A_{k+1}` and `C_{k+1}` have width `w_k² − w_k/2` and act on the channels
//! above the lowest `ℓ_{k+1} = w_k/2` (Lemma 2). The resulting network has
//! width `w_k = 2^(2^k)`, is a sorting network at every truncation, and any
//! value that enters on wire `n` and leaves on wire `m` traverses only
//! `O(log^c max(n, m))` comparators (Theorem 2), where `c` is the depth
//! exponent of the base family.
//!
//! The crucial observation that makes the construction directly executable is
//! that, with `B` occupying channels `0..w_k` and `A`/`C` occupying channels
//! `ℓ..w_{k+1}`, the inter-network wiring of Lemma 2 is the identity on
//! channels: no permutation stage is needed. The flattened network is simply
//! the concatenation `A_L ; A_{L-1} ; … ; A_1 ; S₀ ; C_1 ; … ; C_L`, with each
//! section applied to its channel range. [`AdaptiveNetwork`] exposes exactly
//! that section list, which is what the renaming network in the core crate
//! traverses.

use crate::family::SortingFamily;
use crate::network::{Comparator, ComparatorNetwork};
use crate::schedule::ComparatorSchedule;
use std::fmt;
use std::sync::Arc;

/// The largest supported level: `w_5 = 2^32` wires, enough for any practical
/// truncation (input ports up to `2^31`).
pub const MAX_LEVEL: usize = 5;

/// Which part of the sandwich a [`Section`] implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// The pre-network `A_level`, executed before all inner levels.
    Pre {
        /// The sandwich level this section belongs to (1-based).
        level: usize,
    },
    /// The innermost two-wire network `S₀`.
    Base,
    /// The post-network `C_level`, executed after all inner levels.
    Post {
        /// The sandwich level this section belongs to (1-based).
        level: usize,
    },
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SectionKind::Pre { level } => write!(f, "A{level}"),
            SectionKind::Base => write!(f, "S0"),
            SectionKind::Post { level } => write!(f, "C{level}"),
        }
    }
}

/// One contiguous section of the adaptive network: a sorting network of the
/// base family applied to the channel range `offset..offset + width`.
#[derive(Clone)]
pub struct Section {
    /// Position of this section in traversal order (0-based).
    pub index: usize,
    /// Which part of the sandwich this is.
    pub kind: SectionKind,
    /// First channel this section acts on.
    pub offset: usize,
    /// The section's sorting network (width = number of channels it spans).
    pub schedule: Arc<dyn ComparatorSchedule>,
}

impl Section {
    /// Number of channels the section spans.
    pub fn width(&self) -> usize {
        self.schedule.width()
    }

    /// Whether the given global channel is acted on by this section.
    pub fn covers(&self, channel: usize) -> bool {
        channel >= self.offset && channel < self.offset + self.width()
    }

    /// The comparator touching `channel` in the section's `stage`, translated
    /// to global channel indices. Returns `None` if the channel is outside the
    /// section or idle in that stage.
    pub fn comparator_at(&self, stage: usize, channel: usize) -> Option<Comparator> {
        if !self.covers(channel) {
            return None;
        }
        self.schedule
            .comparator_at(stage, channel - self.offset)
            .map(|c| Comparator::new(c.top + self.offset, c.bottom + self.offset))
    }
}

impl fmt::Debug for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Section")
            .field("index", &self.index)
            .field("kind", &self.kind)
            .field("offset", &self.offset)
            .field("width", &self.width())
            .field("depth", &self.schedule.depth())
            .finish()
    }
}

/// The width `w_level = 2^(2^level)` of the adaptive network at a level.
///
/// # Panics
///
/// Panics if `level > MAX_LEVEL`.
pub fn level_width(level: usize) -> usize {
    assert!(level <= MAX_LEVEL, "level {level} exceeds MAX_LEVEL");
    1usize << (1usize << level)
}

/// The smallest level whose *lower half* covers the given input port, i.e.
/// the level `k'` such that a value entering on `port` stays within `S_{k'}`
/// when it is among the smallest values (Lemma 3 / Theorem 2).
pub fn level_for_port(port: usize) -> usize {
    for level in 0..=MAX_LEVEL {
        if port < level_width(level) / 2 {
            return level.max(1);
        }
    }
    MAX_LEVEL
}

/// The §6.1 adaptive sorting network, truncated at a chosen level.
///
/// # Example
///
/// ```
/// use sortnet::adaptive::AdaptiveNetwork;
/// use sortnet::family::NetworkFamily;
/// use sortnet::verify::is_sorting_network_exhaustive;
///
/// // Level 2: a 16-wire network.
/// let adaptive = AdaptiveNetwork::new(NetworkFamily::OddEven, 2);
/// assert_eq!(adaptive.width(), 16);
/// assert!(is_sorting_network_exhaustive(&adaptive.materialize()));
/// ```
pub struct AdaptiveNetwork {
    family: Arc<dyn SortingFamily>,
    max_level: usize,
    sections: Vec<Section>,
}

impl AdaptiveNetwork {
    /// Builds the adaptive network up to `max_level` over the given base
    /// family.
    ///
    /// Levels beyond 3 should only be used with analytically scheduled
    /// families (such as [`NetworkFamily::OddEven`](crate::family::NetworkFamily)),
    /// since materialized families would allocate networks with millions of
    /// comparators.
    ///
    /// # Panics
    ///
    /// Panics if `max_level` is 0 or exceeds [`MAX_LEVEL`].
    pub fn new<F: SortingFamily + 'static>(family: F, max_level: usize) -> Self {
        Self::with_family(Arc::new(family), max_level)
    }

    /// Like [`AdaptiveNetwork::new`], but taking an already-shared family.
    pub fn with_family(family: Arc<dyn SortingFamily>, max_level: usize) -> Self {
        assert!(
            max_level >= 1,
            "the adaptive network needs at least level 1"
        );
        assert!(
            max_level <= MAX_LEVEL,
            "level {max_level} exceeds MAX_LEVEL ({MAX_LEVEL})"
        );

        // Base section S0: a single comparator on channels {0, 1}.
        let mut base = ComparatorNetwork::new(2);
        base.push_stage(vec![Comparator::new(0, 1)]);
        let base_schedule: Arc<dyn ComparatorSchedule> = Arc::new(base);

        // Per-level A/C schedules (A_j and C_j share the same width, but are
        // distinct sections — and hence distinct comparator objects once
        // turned into a renaming network).
        let mut sections = Vec::new();
        let mut index = 0;
        for level in (1..=max_level).rev() {
            let offset = level_width(level - 1) / 2;
            let width = level_width(level) - offset;
            sections.push(Section {
                index,
                kind: SectionKind::Pre { level },
                offset,
                schedule: family.schedule(width),
            });
            index += 1;
        }
        sections.push(Section {
            index,
            kind: SectionKind::Base,
            offset: 0,
            schedule: Arc::clone(&base_schedule),
        });
        index += 1;
        for level in 1..=max_level {
            let offset = level_width(level - 1) / 2;
            let width = level_width(level) - offset;
            sections.push(Section {
                index,
                kind: SectionKind::Post { level },
                offset,
                schedule: family.schedule(width),
            });
            index += 1;
        }

        AdaptiveNetwork {
            family,
            max_level,
            sections,
        }
    }

    /// The base family used by the construction.
    pub fn family(&self) -> &Arc<dyn SortingFamily> {
        &self.family
    }

    /// The truncation level of this instance.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// The total number of wires, `2^(2^max_level)`.
    pub fn width(&self) -> usize {
        level_width(self.max_level)
    }

    /// The sections in traversal order: `A_L, …, A_1, S₀, C_1, …, C_L`.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Total depth: the sum of the section depths. This is the worst-case
    /// number of stages any value can pass through; the per-value bound of
    /// Theorem 2 is much smaller for values entering and leaving low wires.
    pub fn total_depth(&self) -> usize {
        self.sections.iter().map(|s| s.schedule.depth()).sum()
    }

    /// The number of comparator stages a value confined to the lowest
    /// `max(n, m) + 1` wires can traverse: the depth of `S_{k'}` where `k'` is
    /// the level covering that wire (the Theorem 2 bound, instantiated for
    /// this base family).
    pub fn traversal_depth_bound(&self, max_wire: usize) -> usize {
        let level = level_for_port(max_wire).min(self.max_level);
        let mut bound = 1; // the base comparator
        for j in 1..=level {
            let offset = level_width(j - 1) / 2;
            let width = level_width(j) - offset;
            bound += 2 * self.family.depth(width);
        }
        bound
    }

    /// Flattens the construction into a materialized comparator network of
    /// width [`AdaptiveNetwork::width`]. Intended for verification and for
    /// small levels (≤ 3); level 4 and above would materialize millions of
    /// comparators.
    pub fn materialize(&self) -> ComparatorNetwork {
        let width = self.width();
        let mut network = ComparatorNetwork::new(width);
        for section in &self.sections {
            for stage in 0..section.schedule.depth() {
                let comparators: Vec<Comparator> = section
                    .schedule
                    .stage_comparators(stage)
                    .into_iter()
                    .map(|c| Comparator::new(c.top + section.offset, c.bottom + section.offset))
                    .collect();
                if !comparators.is_empty() {
                    network.push_stage(comparators);
                }
            }
        }
        network
    }
}

impl fmt::Debug for AdaptiveNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptiveNetwork")
            .field("family", &self.family.name())
            .field("max_level", &self.max_level)
            .field("width", &self.width())
            .field("sections", &self.sections.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::NetworkFamily;
    use crate::verify::{is_sorting_network_exhaustive, sorts_random_zero_one_inputs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn level_widths_are_double_exponential() {
        assert_eq!(level_width(0), 2);
        assert_eq!(level_width(1), 4);
        assert_eq!(level_width(2), 16);
        assert_eq!(level_width(3), 256);
        assert_eq!(level_width(4), 65536);
        assert_eq!(level_width(5), 1 << 32);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_LEVEL")]
    fn level_width_rejects_oversized_levels() {
        let _ = level_width(6);
    }

    #[test]
    fn level_for_port_matches_the_lemma_3_threshold() {
        assert_eq!(level_for_port(0), 1);
        assert_eq!(level_for_port(1), 1);
        assert_eq!(level_for_port(2), 2);
        assert_eq!(level_for_port(7), 2);
        assert_eq!(level_for_port(8), 3);
        assert_eq!(level_for_port(127), 3);
        assert_eq!(level_for_port(128), 4);
        assert_eq!(level_for_port(40_000), 5);
    }

    #[test]
    fn section_layout_follows_the_sandwich_order() {
        let adaptive = AdaptiveNetwork::new(NetworkFamily::OddEven, 3);
        let kinds: Vec<String> = adaptive
            .sections()
            .iter()
            .map(|s| s.kind.to_string())
            .collect();
        assert_eq!(kinds, vec!["A3", "A2", "A1", "S0", "C1", "C2", "C3"]);
        // Sections carry consecutive indices.
        for (i, section) in adaptive.sections().iter().enumerate() {
            assert_eq!(section.index, i);
        }
        // Offsets and widths match the construction.
        let a3 = &adaptive.sections()[0];
        assert_eq!(a3.offset, 8);
        assert_eq!(a3.width(), 248);
        let a1 = &adaptive.sections()[2];
        assert_eq!(a1.offset, 1);
        assert_eq!(a1.width(), 3);
        let base = &adaptive.sections()[3];
        assert_eq!(base.offset, 0);
        assert_eq!(base.width(), 2);
    }

    #[test]
    fn section_comparator_queries_are_translated_to_global_channels() {
        let adaptive = AdaptiveNetwork::new(NetworkFamily::OddEven, 2);
        let a1 = adaptive
            .sections()
            .iter()
            .find(|s| s.kind == SectionKind::Pre { level: 1 })
            .unwrap();
        assert!(a1.covers(1) && a1.covers(3) && !a1.covers(0) && !a1.covers(4));
        assert_eq!(a1.comparator_at(0, 0), None, "channel outside the section");
        // Any comparator reported must lie within the section's channel range.
        for stage in 0..a1.schedule.depth() {
            for channel in 1..4 {
                if let Some(c) = a1.comparator_at(stage, channel) {
                    assert!(c.top >= a1.offset && c.bottom < a1.offset + a1.width());
                    assert!(c.touches(channel));
                }
            }
        }
    }

    #[test]
    fn level_1_and_2_truncations_sort_exhaustively() {
        for family in [NetworkFamily::OddEven, NetworkFamily::Bitonic] {
            let level1 = AdaptiveNetwork::new(family, 1);
            assert_eq!(level1.width(), 4);
            assert!(
                is_sorting_network_exhaustive(&level1.materialize()),
                "{family} level 1"
            );

            let level2 = AdaptiveNetwork::new(family, 2);
            assert_eq!(level2.width(), 16);
            assert!(
                is_sorting_network_exhaustive(&level2.materialize()),
                "{family} level 2"
            );
        }
    }

    #[test]
    fn level_3_truncation_sorts_random_inputs() {
        let adaptive = AdaptiveNetwork::new(NetworkFamily::OddEven, 3);
        let network = adaptive.materialize();
        assert_eq!(network.width(), 256);
        let mut rng = StdRng::seed_from_u64(1234);
        assert!(sorts_random_zero_one_inputs(&network, 300, &mut rng));
    }

    #[test]
    fn values_on_low_wires_traverse_few_comparators() {
        // Theorem 2: a value entering wire n and leaving wire m traverses
        // O(log^c max(n, m)) comparators. Put a single zero on a low wire and
        // on a high wire and compare their traversal counts.
        let adaptive = AdaptiveNetwork::new(NetworkFamily::OddEven, 3);
        let network = adaptive.materialize();
        let traversal_for = |port: usize| {
            let mut input = vec![1u8; network.width()];
            input[port] = 0;
            let trace = network.trace(&input);
            assert_eq!(trace[port].output_wire, 0, "the unique zero exits first");
            trace[port].comparators_traversed
        };
        let low = traversal_for(1);
        let mid = traversal_for(6);
        let high = traversal_for(200);
        assert!(low <= adaptive.traversal_depth_bound(1), "low {low}");
        assert!(mid <= adaptive.traversal_depth_bound(6), "mid {mid}");
        assert!(high <= adaptive.traversal_depth_bound(200), "high {high}");
        assert!(
            low < high,
            "low-wire values must traverse fewer comparators"
        );
        // The whole-network depth is much larger than the low-wire bound.
        assert!(adaptive.traversal_depth_bound(1) < adaptive.total_depth());
    }

    #[test]
    fn high_level_instances_are_cheap_with_analytic_families() {
        let adaptive = AdaptiveNetwork::new(NetworkFamily::OddEven, 5);
        assert_eq!(adaptive.width(), 1 << 32);
        assert_eq!(adaptive.sections().len(), 11);
        assert!(adaptive.total_depth() > 0);
        assert!(format!("{adaptive:?}").contains("AdaptiveNetwork"));
    }

    #[test]
    #[should_panic(expected = "at least level 1")]
    fn level_zero_is_rejected() {
        let _ = AdaptiveNetwork::new(NetworkFamily::OddEven, 0);
    }

    #[test]
    fn traversal_depth_bound_grows_with_the_wire_index() {
        let adaptive = AdaptiveNetwork::new(NetworkFamily::OddEven, 4);
        let bounds: Vec<usize> = [1usize, 3, 10, 100, 1000]
            .iter()
            .map(|&w| adaptive.traversal_depth_bound(w))
            .collect();
        for pair in bounds.windows(2) {
            assert!(pair[0] <= pair[1], "bounds must be monotone: {bounds:?}");
        }
        // The bound for tiny wires is dramatically smaller than for wire 1000.
        assert!(bounds[0] * 4 < bounds[4]);
    }
}
