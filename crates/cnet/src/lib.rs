//! Counting networks: contention-distributing counters over balancer wiring.
//!
//! The paper's headline application is counting (§8): the monotone counter
//! pairs adaptive renaming with a max register, and the m-valued
//! fetch-and-increment layers test-and-sets over it. This crate adds the
//! *other* classical route to scalable counting — the **counting networks**
//! of Aspnes, Herlihy and Shavit (JACM 1994): balancing networks of two-wire
//! toggles whose quiescent output counts always form a staircase (the *step
//! property*), so appending one local counter per output wire yields a
//! counter whose increments spread over `Θ(w log² w)` memory words instead
//! of funnelling through one.
//!
//! Balancing networks are structurally isomorphic to the comparator networks
//! the `sortnet` crate already compiles, so the crate reuses that machinery
//! wholesale:
//!
//! * [`Balancer`] — the primitive: one atomic word toggled per token, with
//!   step accounting through `shmem` ([`StepKind::Balancer`]).
//! * [`BalancingNetwork`] — any [`ComparatorSchedule`] reinterpreted as
//!   balancer wiring (the interpreted reference engine).
//! * [`CompiledBalancingNetwork`] — the fast path over
//!   [`CompiledSchedule`](sortnet::compiled::CompiledSchedule)'s flat
//!   wire-map and dense-CSR arrays: O(1) per-stage traversal, balancers in a
//!   flat slab indexed by dense slot.
//! * [`CountingFamily`] — the wirings certified to count: bitonic and
//!   periodic, both at power-of-two widths. Batcher's odd-even merge and
//!   the one-pass transposition wiring provably miscount and are rejected
//!   ([`UncertifiedWiring`]); the refutations are pinned as tests.
//! * [`NetworkCounter`] — the counter: traverse + fetch-add on the exit
//!   wire, width-`w` tickets `local · w + wire`, quiescently consistent
//!   reads ([`check_quiescent_consistent`]) but deliberately *not*
//!   linearizable.
//! * [`Prism`] — elimination/diffraction exchanger slots where two colliding
//!   increments pair off before entering the network: one returns
//!   immediately, the other carries a weight-2 token.
//! * [`AdaptiveNetworkCounter`] — the adaptive counter: a [`ContentionSensor`]
//!   routes each increment through a prism into the narrowest of a
//!   width-2/4/8/… cascade of networks that covers *realized* contention,
//!   so a quiet counter pays ~4 shared steps instead of a wide network's ~11.
//! * [`verify`] — executable step-property checks and a pure sequential
//!   token simulator for certifying or refuting candidate wirings.
//!
//! # Quick start
//!
//! ```
//! use cnet::{CountingFamily, NetworkCounter};
//! use shmem::adversary::ExecConfig;
//! use shmem::executor::Executor;
//! use std::sync::Arc;
//!
//! let counter = Arc::new(NetworkCounter::new(CountingFamily::Bitonic, 8));
//! let outcome = Executor::new(ExecConfig::new(1)).run(8, {
//!     let counter = Arc::clone(&counter);
//!     move |ctx| counter.fetch_increment(ctx)
//! });
//! // Quiescent: the exit counts form a staircase and the sum is exact.
//! assert!(cnet::verify::has_step_property(&counter.exit_counts()));
//! assert_eq!(counter.peek(), 8);
//! // The eight tickets are exactly 0..8 (in some order).
//! assert_eq!(outcome.results_sorted(), (0..8).collect::<Vec<u64>>());
//! ```
//!
//! [`StepKind::Balancer`]: shmem::steps::StepKind
//! [`ComparatorSchedule`]: sortnet::schedule::ComparatorSchedule
//! [`check_quiescent_consistent`]: shmem::consistency::check_quiescent_consistent

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod balancer;
pub mod compiled;
pub mod counter;
pub mod family;
pub mod network;
pub mod prism;
pub mod verify;

pub use adaptive::{AdaptiveNetworkCounter, ContentionSensor};
pub use balancer::{Balancer, BalancerSlot};
pub use compiled::CompiledBalancingNetwork;
pub use counter::NetworkCounter;
pub use family::{CountingFamily, UncertifiedWiring};
pub use network::{BalancingNetwork, BalancingTopology};
pub use prism::{Prism, PrismOutcome};
pub use verify::{
    has_step_property, is_smooth, sequential_step_property, simulate_tokens,
    step_property_violation, StepViolation,
};
