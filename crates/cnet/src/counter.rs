//! The network counter: a balancing network with per-output-wire counters.
//!
//! The classical contention-distributing counter (Aspnes–Herlihy–Shavit):
//! append a local counter to every output wire of a width-`w` counting
//! network. An increment routes a token through the network — `Θ(log² w)`
//! balancer toggles, each on a different memory word, so concurrent
//! increments mostly touch *different* balancers — and then performs one
//! fetch-and-add on its exit wire's local counter. Where the hardware
//! fetch-and-add baseline funnels every increment through one cache line,
//! the network spreads them over `size()` balancers and `w` exit counters.
//!
//! The step property turns the pair `(exit wire, local count)` into an exact
//! ticket: the token that performs the `local`-th fetch-add on wire `wire`
//! is the `local · w + wire`-th token through the network (0-indexed), so
//! [`NetworkCounter::fetch_increment`] is a width-`w` *m-valued
//! fetch-and-increment* in the sense of the paper's §8.2 — quiescently
//! consistent rather than linearizable (the non-linearizability
//! counterexample is pinned in `tests/cnet_properties.rs`).
//!
//! Reads sum the exit counters one register read at a time. At any quiescent
//! point the sum is exactly the number of completed increments
//! ([`check_quiescent_consistent`](shmem::consistency::check_quiescent_consistent));
//! a read overlapping increments may see any intermediate value.

use crate::compiled::CompiledBalancingNetwork;
use crate::family::CountingFamily;
use crate::network::BalancingTopology;
use shmem::arena::Arena;
use shmem::pad::CachePadded;
use shmem::process::ProcessCtx;
use shmem::register::AtomicU64Register;
use std::fmt;
use std::sync::Arc;

/// A quiescently-consistent counter over a balancing network.
///
/// # Example
///
/// ```
/// use cnet::counter::NetworkCounter;
/// use cnet::family::CountingFamily;
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let counter = NetworkCounter::new(CountingFamily::Bitonic, 4);
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
/// assert_eq!(counter.fetch_increment(&mut ctx), 0);
/// assert_eq!(counter.fetch_increment(&mut ctx), 1);
/// counter.increment(&mut ctx);
/// assert_eq!(counter.read(&mut ctx), 3);
/// ```
pub struct NetworkCounter<T: BalancingTopology = CompiledBalancingNetwork> {
    network: T,
    /// One local counter per output wire, each on its own cache line: exit
    /// wires are hit by different tokens concurrently, and the whole point of
    /// the network is that those final fetch-adds do not contend.
    exits: Vec<CachePadded<AtomicU64Register>>,
}

impl NetworkCounter<CompiledBalancingNetwork> {
    /// Builds the counter over the compiled fast-path engine for a certified
    /// counting wiring.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two or is below 2 (see
    /// [`CountingFamily::schedule`]).
    pub fn new(family: CountingFamily, width: usize) -> Self {
        Self::with_network(CompiledBalancingNetwork::compile(&*family.schedule(width)))
    }

    /// Like [`NetworkCounter::new`], but places every balancer toggle word
    /// and every exit counter in `arena` — the cross-process constructor.
    ///
    /// # Panics
    ///
    /// As [`NetworkCounter::new`]; additionally panics if the arena runs out
    /// of space (size it with [`NetworkCounter::footprint`]).
    pub fn new_in(family: CountingFamily, width: usize, arena: &Arc<Arena>) -> Self {
        Self::with_network_in(
            CompiledBalancingNetwork::compile_in(&*family.schedule(width), arena),
            arena,
        )
    }

    /// The number of arena bytes [`NetworkCounter::new_in`] allocates: one
    /// 64-byte line per balancer plus one per exit wire.
    pub fn footprint(family: CountingFamily, width: usize) -> usize {
        let size = CompiledBalancingNetwork::compile(&*family.schedule(width)).size();
        CompiledBalancingNetwork::footprint(size) + width * 64
    }
}

impl Default for NetworkCounter<CompiledBalancingNetwork> {
    /// A width-8 bitonic network counter — wide enough to spread the
    /// contention of a typical thread count, shallow enough (6 stages) to
    /// keep the uncontended latency low.
    fn default() -> Self {
        Self::new(CountingFamily::Bitonic, 8)
    }
}

impl<T: BalancingTopology> NetworkCounter<T> {
    /// Builds the counter over an explicit balancing network.
    ///
    /// The quiescent-consistency guarantee requires the network to be a
    /// *counting* network; plugging in an uncertified wiring (odd-even
    /// merge, one-pass transposition) yields a counter whose quiescent reads
    /// are still exact — tokens are conserved — but whose
    /// [`fetch_increment`](NetworkCounter::fetch_increment) tickets may
    /// collide or skip.
    pub fn with_network(network: T) -> Self {
        let exits = (0..network.width())
            .map(|_| CachePadded::new(AtomicU64Register::new(0)))
            .collect();
        NetworkCounter { network, exits }
    }

    /// Like [`NetworkCounter::with_network`], but backs every exit counter
    /// with an arena-resident word (each already on its own line, so the
    /// [`CachePadded`] wrapper only keeps the handle struct's inline layout
    /// uniform with the private build).
    pub fn with_network_in(network: T, arena: &Arc<Arena>) -> Self {
        let exits = (0..network.width())
            .map(|_| CachePadded::new(AtomicU64Register::new_in(arena, 0)))
            .collect();
        NetworkCounter { network, exits }
    }

    /// The number of wires (the counter's contention-spreading width).
    pub fn width(&self) -> usize {
        self.network.width()
    }

    /// The underlying balancing network.
    pub fn network(&self) -> &T {
        &self.network
    }

    /// The input wire a process's tokens enter on: processes are spread over
    /// the wires by identifier. Any choice of entry wire preserves the
    /// counting property; spreading merely distributes first-stage
    /// contention.
    pub fn entry_wire(&self, ctx: &ProcessCtx) -> usize {
        ctx.id().as_usize() % self.width()
    }

    /// Increments the counter: one token through the network plus one
    /// fetch-and-add on the exit wire.
    pub fn increment(&self, ctx: &mut ProcessCtx) {
        let _ = self.fetch_increment(ctx);
    }

    /// Increments the counter and returns the token's 0-indexed ticket
    /// `local · width + wire`. In any quiescent prefix the step property
    /// makes consecutive tickets exactly `0, 1, 2, …` — an m-valued
    /// fetch-and-increment that is quiescently consistent but (provably) not
    /// linearizable.
    pub fn fetch_increment(&self, ctx: &mut ProcessCtx) -> u64 {
        let increment_timer = obs::start();
        let entry = self.entry_wire(ctx);
        let wire = self.network.traverse(ctx, entry);
        let ticket = self.deposit(ctx, wire);
        obs::count(obs::Metric::NetIncrement);
        obs::finish(increment_timer, obs::Metric::NetIncrementNs);
        ticket
    }

    /// The deposit half of [`fetch_increment`](NetworkCounter::fetch_increment):
    /// performs the exit-wire fetch-and-add for a token that already
    /// traversed the network to `wire`, returning its ticket.
    ///
    /// Exposed so tests and harnesses can drive the traversal and the
    /// deposit as separate phases (the non-linearizability counterexample
    /// stalls a token exactly between the two); algorithm code should call
    /// `fetch_increment`.
    ///
    /// # Panics
    ///
    /// Panics if `wire >= self.width()`.
    pub fn deposit(&self, ctx: &mut ProcessCtx, wire: usize) -> u64 {
        let local = self.exits[wire].fetch_add(ctx, 1);
        local * self.width() as u64 + wire as u64
    }

    /// Reads the counter: sums the exit counters one register read at a
    /// time. Quiescently consistent — exact whenever no increment is in
    /// flight.
    pub fn read(&self, ctx: &mut ProcessCtx) -> u64 {
        self.exits.iter().map(|exit| exit.read(ctx)).sum()
    }

    /// The per-output-wire token counts, without charging steps
    /// (harness/test inspection; meaningful at quiescent points, where they
    /// must satisfy the step property).
    pub fn exit_counts(&self) -> Vec<u64> {
        self.exits.iter().map(|exit| exit.peek()).collect()
    }

    /// The total token count, without charging steps (harness/test
    /// inspection).
    pub fn peek(&self) -> u64 {
        self.exit_counts().iter().sum()
    }
}

impl<T: BalancingTopology> fmt::Debug for NetworkCounter<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetworkCounter")
            .field("width", &self.width())
            .field("depth", &self.network.depth())
            .field("tokens", &self.peek())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::has_step_property;
    use shmem::process::ProcessId;

    fn ctx(id: usize) -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(id), 11)
    }

    #[test]
    fn sequential_tickets_count_up_from_zero() {
        for family in CountingFamily::all() {
            for width in [2usize, 4, 8] {
                let counter = NetworkCounter::new(family, width);
                let mut ctx = ctx(0);
                for expected in 0..3 * width as u64 {
                    assert_eq!(
                        counter.fetch_increment(&mut ctx),
                        expected,
                        "{family} width {width}"
                    );
                    assert_eq!(counter.read(&mut ctx), expected + 1);
                    assert!(has_step_property(&counter.exit_counts()));
                }
            }
        }
    }

    #[test]
    fn tickets_count_up_from_any_mix_of_entry_wires() {
        let counter = NetworkCounter::new(CountingFamily::Periodic, 4);
        // Four processes with different identities → different entry wires.
        let mut contexts: Vec<ProcessCtx> = (0..4).map(ctx).collect();
        let mut expected = 0u64;
        for round in 0..4 {
            for (process, context) in contexts.iter_mut().enumerate() {
                let ticket = counter.fetch_increment(context);
                assert_eq!(ticket, expected, "round {round} process {process}");
                expected += 1;
            }
        }
    }

    #[test]
    fn entry_wires_spread_processes_by_identifier() {
        let counter = NetworkCounter::new(CountingFamily::Bitonic, 4);
        assert_eq!(counter.entry_wire(&ctx(0)), 0);
        assert_eq!(counter.entry_wire(&ctx(3)), 3);
        assert_eq!(counter.entry_wire(&ctx(6)), 2);
    }

    #[test]
    fn increment_charges_toggles_and_one_rmw() {
        let counter = NetworkCounter::new(CountingFamily::Bitonic, 8);
        let mut ctx = ctx(0);
        counter.increment(&mut ctx);
        let stats = ctx.stats();
        assert_eq!(stats.balancer_toggles, 6, "bitonic-8 has depth 6");
        assert_eq!(stats.rmws, 1, "one exit-wire fetch-add");
        assert_eq!(stats.reads, 0);

        counter.read(&mut ctx);
        assert_eq!(ctx.stats().reads, 8, "a read sums all eight exit wires");
    }

    #[test]
    fn deposit_is_the_second_half_of_fetch_increment() {
        let counter = NetworkCounter::new(CountingFamily::Bitonic, 2);
        let mut ctx = ctx(0);
        let wire = counter.network().traverse(&mut ctx, 0);
        assert_eq!(counter.deposit(&mut ctx, wire), 0);
        assert_eq!(counter.fetch_increment(&mut ctx), 1);
        assert_eq!(counter.peek(), 2);
    }

    #[test]
    fn debug_and_default_report_the_shape() {
        let counter = NetworkCounter::default();
        assert_eq!(counter.width(), 8);
        let rendered = format!("{counter:?}");
        assert!(rendered.contains("NetworkCounter"));
        assert!(rendered.contains("tokens"));
    }

    #[test]
    fn arena_backed_counter_counts_identically() {
        use shmem::arena::Arena;

        let arena = Arena::heap(NetworkCounter::footprint(CountingFamily::Bitonic, 4));
        let counter = NetworkCounter::new_in(CountingFamily::Bitonic, 4, &arena);
        assert_eq!(arena.remaining(), 0, "footprint is exact");
        let mut ctx = ctx(0);
        for expected in 0..12u64 {
            assert_eq!(counter.fetch_increment(&mut ctx), expected);
        }
        assert_eq!(counter.read(&mut ctx), 12);
        assert!(has_step_property(&counter.exit_counts()));
    }

    #[test]
    #[should_panic(expected = "power-of-two width")]
    fn non_power_of_two_widths_are_rejected() {
        let _ = NetworkCounter::new(CountingFamily::Bitonic, 12);
    }
}
