//! The balancer: a one-word toggle routing tokens alternately up and down.
//!
//! A *balancer* is the counting-network analogue of a comparator: a two-wire
//! switch that forwards arriving tokens alternately to its top and bottom
//! output wires, starting with the top. In any quiescent state the balancer
//! has therefore sent `⌈t / 2⌉` of its `t` tokens up and `⌊t / 2⌋` down —
//! the two-wire step property from which the step property of whole counting
//! networks is built (Aspnes, Herlihy & Shavit, *Counting Networks*, JACM
//! 1994).
//!
//! The implementation is a single `fetch_add` on an atomic counter: the
//! parity of the pre-increment value is the direction taken, and the counter
//! itself doubles as the quiescent token count used by the test harness.
//! Every toggle reports one [`StepKind::Balancer`] step to the calling
//! process's context, keeping the cost model centralized exactly like the
//! register and test-and-set substrate in `shmem`.

use shmem::arena::{Arena, ArenaCell};
use shmem::process::ProcessCtx;
use shmem::steps::StepKind;
use shmem::Loc;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Direction a token leaves a balancer on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BalancerSlot {
    /// The token exits on the balancer's top (lower-indexed) wire.
    Top,
    /// The token exits on the balancer's bottom (higher-indexed) wire.
    Bottom,
}

/// An atomic two-wire balancer with step accounting.
///
/// # Example
///
/// ```
/// use cnet::balancer::{Balancer, BalancerSlot};
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let balancer = Balancer::new();
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
/// assert_eq!(balancer.toggle(&mut ctx), BalancerSlot::Top);
/// assert_eq!(balancer.toggle(&mut ctx), BalancerSlot::Bottom);
/// assert_eq!(balancer.toggle(&mut ctx), BalancerSlot::Top);
/// assert_eq!(balancer.tokens(), 3);
/// assert_eq!(ctx.stats().balancer_toggles, 3);
/// ```
/// The struct is aligned to a 64-byte cache line so that the flat balancer
/// slabs built by [`CompiledBalancingNetwork`](crate::CompiledBalancingNetwork)
/// place every toggle word on its own line: neighbouring balancers in a slab
/// are hit by different tokens concurrently, and letting them share a line
/// serializes those independent toggles through coherence traffic.
/// A balancer built with [`Balancer::new_in`] instead stores its toggle word
/// in a shared [`Arena`], so a slab of handle structs can stay process-local
/// (copied freely across `fork`) while every process toggles the *same*
/// arena-resident word.
#[derive(Debug)]
#[repr(align(64))]
pub struct Balancer {
    /// Tokens that have passed through. The parity of the pre-increment
    /// value is the direction the token takes: even → top, odd → bottom.
    /// Inline by default; arena-resident for cross-process networks.
    passed: ArenaCell<AtomicU64>,
    /// Identity of the toggle word for schedule exploration: two toggles on
    /// the same balancer are RMW conflicts, toggles on distinct balancers
    /// commute.
    loc: Loc,
}

impl Default for Balancer {
    fn default() -> Self {
        Balancer::new()
    }
}

impl Balancer {
    /// Creates a balancer pointing at its top wire.
    pub fn new() -> Self {
        Balancer {
            passed: ArenaCell::inline(AtomicU64::new(0)),
            loc: Loc::fresh(),
        }
    }

    /// Creates a balancer whose toggle word lives in `arena` (on its own
    /// 64-byte line, like every arena allocation), pointing at its top wire.
    /// Its [`Loc`] is derived from the arena offset, so identical network
    /// constructions produce identical location identities on every backend.
    pub fn new_in(arena: &Arc<Arena>) -> Self {
        let passed = ArenaCell::new_in(arena, AtomicU64::new(0));
        let loc = passed.loc().expect("arena cells have derived locs");
        Balancer { passed, loc }
    }

    /// The shared-memory location identity of this balancer's toggle word.
    pub fn loc(&self) -> Loc {
        self.loc
    }

    /// Passes one token through the balancer, charging one
    /// [`StepKind::Balancer`] step, and returns the wire the token exits on.
    #[inline]
    pub fn toggle(&self, ctx: &mut ProcessCtx) -> BalancerSlot {
        ctx.record_at(StepKind::Balancer, self.loc);
        obs::count(obs::Metric::BalancerToggle);
        if self
            .passed
            .get()
            .fetch_add(1, Ordering::AcqRel)
            .is_multiple_of(2)
        {
            BalancerSlot::Top
        } else {
            BalancerSlot::Bottom
        }
    }

    /// Total tokens that have passed through, without charging a step
    /// (harness/test inspection only, never from algorithm code).
    pub fn tokens(&self) -> u64 {
        self.passed.get().load(Ordering::Acquire)
    }

    /// Tokens sent to the top wire so far: `⌈tokens / 2⌉` in any quiescent
    /// state (harness/test inspection only).
    pub fn tokens_top(&self) -> u64 {
        self.tokens().div_ceil(2)
    }

    /// Tokens sent to the bottom wire so far: `⌊tokens / 2⌋` in any
    /// quiescent state (harness/test inspection only).
    pub fn tokens_bottom(&self) -> u64 {
        self.tokens() / 2
    }
}

impl fmt::Display for Balancer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "balancer(tokens={})", self.tokens())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::process::ProcessId;
    use std::sync::Arc;

    fn ctx() -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(0), 7)
    }

    #[test]
    fn tokens_alternate_starting_with_top() {
        let balancer = Balancer::new();
        let mut ctx = ctx();
        let directions: Vec<BalancerSlot> = (0..6).map(|_| balancer.toggle(&mut ctx)).collect();
        assert_eq!(
            directions,
            vec![
                BalancerSlot::Top,
                BalancerSlot::Bottom,
                BalancerSlot::Top,
                BalancerSlot::Bottom,
                BalancerSlot::Top,
                BalancerSlot::Bottom,
            ]
        );
    }

    #[test]
    fn toggles_charge_balancer_steps_only() {
        let balancer = Balancer::new();
        let mut ctx = ctx();
        for _ in 0..5 {
            balancer.toggle(&mut ctx);
        }
        let stats = ctx.stats();
        assert_eq!(stats.balancer_toggles, 5);
        assert_eq!(stats.total(), 0, "toggles are a separate unit-cost measure");
        assert_eq!(stats.total_all(), 5);
    }

    #[test]
    fn quiescent_counts_satisfy_the_two_wire_step_property() {
        let balancer = Balancer::new();
        let mut ctx = ctx();
        for expected_tokens in 1..=9u64 {
            balancer.toggle(&mut ctx);
            assert_eq!(balancer.tokens(), expected_tokens);
            let top = balancer.tokens_top();
            let bottom = balancer.tokens_bottom();
            assert_eq!(top + bottom, expected_tokens);
            assert!(top == bottom || top == bottom + 1);
        }
    }

    #[test]
    fn concurrent_toggles_conserve_tokens() {
        // Sized so the test stays fast under miri (the CI miri job runs this
        // module) while still exercising real contention natively.
        let (threads, per_thread) = if cfg!(miri) { (3, 8) } else { (8, 500) };
        let balancer = Arc::new(Balancer::new());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let balancer = Arc::clone(&balancer);
                std::thread::spawn(move || {
                    let mut ctx = ProcessCtx::new(ProcessId::new(t), 3);
                    let mut top = 0u64;
                    for _ in 0..per_thread {
                        if balancer.toggle(&mut ctx) == BalancerSlot::Top {
                            top += 1;
                        }
                    }
                    top
                })
            })
            .collect();
        let top: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let total = (threads * per_thread) as u64;
        assert_eq!(balancer.tokens(), total);
        // Exactly the tokens with even pre-increment values went up.
        assert_eq!(top, total.div_ceil(2));
        assert_eq!(balancer.tokens_top(), top);
        assert_eq!(balancer.tokens_bottom(), total - top);
    }

    #[test]
    fn balancers_occupy_distinct_cache_lines() {
        assert_eq!(std::mem::align_of::<Balancer>(), 64);
        assert_eq!(std::mem::size_of::<Balancer>(), 64);
        // In a slab (as built by CompiledBalancingNetwork) adjacent toggle
        // words therefore land on distinct lines.
        let slab: Vec<Balancer> = (0..2).map(|_| Balancer::new()).collect();
        let a = &slab[0] as *const Balancer as usize;
        let b = &slab[1] as *const Balancer as usize;
        assert!(b - a >= 64);
    }

    #[test]
    fn arena_backed_balancers_toggle_the_shared_word() {
        use shmem::arena::Arena;

        let arena = Arena::heap(1 << 12);
        let balancer = Balancer::new_in(&arena);
        let twin = Balancer {
            // A second handle over the same arena word (as a forked process
            // would hold): toggles interleave through the shared state.
            passed: ArenaCell::new_in(&arena, AtomicU64::new(0)),
            loc: Loc::fresh(),
        };
        let mut ctx = ctx();
        assert_eq!(balancer.toggle(&mut ctx), BalancerSlot::Top);
        assert_ne!(
            balancer.loc(),
            twin.loc,
            "distinct arena words have distinct locs"
        );
        assert_eq!(balancer.tokens(), 1);
        // Arena-derived locs are stable offsets, not global-counter draws.
        assert!(balancer.loc() != Loc::fresh());
    }

    #[test]
    fn display_reports_the_token_count() {
        let balancer = Balancer::new();
        let mut ctx = ctx();
        balancer.toggle(&mut ctx);
        assert_eq!(format!("{balancer}"), "balancer(tokens=1)");
    }
}
