//! Elimination/diffraction prisms: pairing off colliding increments before
//! they enter a counting network.
//!
//! A *prism* (Shavit & Zemach's diffracting trees; see also the elimination
//! section of Aspnes' *Notes on Theory of Distributed Systems*) is an array
//! of exchanger slots placed in front of a balancer network. A token arriving
//! at a slot either
//!
//! * finds the slot **empty** — it installs itself and waits a bounded spin
//!   window for a partner;
//! * finds a **waiting** token — it *captures* the waiter and returns
//!   immediately ([`PrismOutcome::Eliminated`]): its increment will be
//!   carried into the network by the waiter, which wakes up as a *combiner*
//!   holding a weight-2 token ([`PrismOutcome::Combined`]);
//! * times out or loses a race — it falls through to the network as an
//!   ordinary weight-1 token ([`PrismOutcome::FellThrough`]).
//!
//! Pairing halves both the token traffic through the balancers and the
//! contention on them exactly when contention is high (collisions are
//! frequent), while the bounded spin window keeps the uncontended path cheap
//! (install, a short spin, one compare-and-swap back out).
//!
//! # Slot protocol
//!
//! Each slot is a single padded atomic word with three states —
//! `EMPTY → WAITING → CAPTURED → EMPTY` — and needs no ABA tag: only the
//! process that installed `WAITING` ever spins on or resets the slot, and
//! exactly one of the installer's timeout CAS (`WAITING → EMPTY`) and a
//! partner's capture CAS (`WAITING → CAPTURED`) can succeed. Which concrete
//! partner was captured never matters for counting — only that one paired
//! increment is now carried by the combiner.
//!
//! # Consistency and cost accounting
//!
//! An eliminated increment returns *before* its value is deposited by the
//! combiner, which is fine for quiescent consistency: any read that begins
//! after the eliminated operation returned but before the combiner deposits
//! overlaps the combiner's in-flight increment, so that read is not separated
//! from the increment by a quiescent point. Exactness at quiescence is
//! restored the moment the combiner deposits.
//!
//! Under *crash injection* the guarantee weakens: if a waiter crashes after
//! a partner captured it (or while carrying its weight-2 token through the
//! network), the partner's already-completed increment is lost with it.
//! Crash-tolerant elimination needs a helping protocol the paper does not
//! require; the executor's default configuration injects no crashes, and the
//! prism tests use yield adversaries only. The slot itself stays safe: a slot
//! abandoned in `CAPTURED` is permanently skipped (every visitor falls
//! through), never corrupted.
//!
//! Every *shared-memory* operation on a slot (initial load, install CAS,
//! capture CAS, timeout CAS, reset store) charges one
//! [`StepKind::Elimination`] step. The spin-window polls are *not* charged:
//! the installer re-reads a line it owns in cache until the capture
//! invalidates it, which the cost model treats as local spinning, matching
//! how the test-and-set substrate accounts its local spins.

use shmem::pad::CachePadded;
use shmem::process::ProcessCtx;
use shmem::steps::StepKind;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Slot is free: an arriving token may install itself and wait.
const EMPTY: u64 = 0;
/// A token is installed and spinning for a partner.
const WAITING: u64 = 1;
/// A partner captured the waiter; the waiter will combine and reset.
const CAPTURED: u64 = 2;

/// How a token's visit to a prism ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrismOutcome {
    /// The token captured a waiting partner and is done: its increment will
    /// be deposited by the partner, which continues as a weight-2 combiner.
    Eliminated,
    /// The token waited, was captured, and now carries weight 2 (its own
    /// increment plus the eliminated partner's) into the network.
    Combined,
    /// No pairing happened inside the spin window; the token proceeds into
    /// the network with its own weight of 1.
    FellThrough,
}

impl PrismOutcome {
    /// The number of increments this token carries into the network: 0 for
    /// an eliminated token, 2 for a combiner, 1 for a fall-through.
    pub fn weight(self) -> u64 {
        match self {
            PrismOutcome::Eliminated => 0,
            PrismOutcome::Combined => 2,
            PrismOutcome::FellThrough => 1,
        }
    }
}

/// An array of exchanger slots with a bounded spin window.
///
/// # Example
///
/// ```
/// use cnet::prism::{Prism, PrismOutcome};
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let prism = Prism::new(1, 16);
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
/// // Alone, a token times out of the exchange and falls through.
/// assert_eq!(prism.visit(&mut ctx), PrismOutcome::FellThrough);
/// assert_eq!(prism.pairs(), 0);
/// ```
pub struct Prism {
    slots: Box<[CachePadded<AtomicU64>]>,
    spin_limit: u32,
    /// Completed eliminations (bumped once per pair, by the capturer).
    pairs: AtomicU64,
}

impl Prism {
    /// Creates a prism with `slots` exchanger slots (at least 1) and a spin
    /// window of `spin_limit` polls.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize, spin_limit: u32) -> Self {
        assert!(slots > 0, "a prism needs at least one slot");
        Prism {
            slots: (0..slots)
                .map(|_| CachePadded::new(AtomicU64::new(EMPTY)))
                .collect(),
            spin_limit,
            pairs: AtomicU64::new(0),
        }
    }

    /// The number of exchanger slots.
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// Completed eliminations so far (each pair counted once). Harness/test
    /// inspection only; never charged to a process.
    pub fn pairs(&self) -> u64 {
        self.pairs.load(Ordering::Acquire)
    }

    /// Visits a uniformly random slot and attempts to pair with another
    /// in-flight increment, per the slot protocol in the module docs.
    ///
    /// Charges one [`StepKind::Elimination`] step per shared slot operation
    /// and (for multi-slot prisms) one coin-flip step for the slot draw.
    pub fn visit(&self, ctx: &mut ProcessCtx) -> PrismOutcome {
        let slot: &AtomicU64 = if self.slots.len() == 1 {
            &self.slots[0]
        } else {
            &self.slots[ctx.random_index(self.slots.len())]
        };
        ctx.record(StepKind::Elimination);
        match slot.load(Ordering::Acquire) {
            EMPTY => {
                ctx.record(StepKind::Elimination);
                if slot
                    .compare_exchange(EMPTY, WAITING, Ordering::AcqRel, Ordering::Acquire) // lint: relaxed-ok(slot handshake RMW both acquires the peer write and releases ours)
                    .is_err()
                {
                    // Someone else took the slot between our load and CAS;
                    // don't retry — proceed into the network.
                    return PrismOutcome::FellThrough;
                }
                for _ in 0..self.spin_limit {
                    // Local poll of a line we own until a capture invalidates
                    // it — not charged as a shared step (see module docs).
                    // Deliberately no PAUSE-style spin hint: on current x86
                    // a PAUSE costs ~10-15 ns, which at a 16-poll window adds
                    // ~200 ns to every *uncontended* increment — the exact
                    // path the prism exists to keep cheap. Polling an owned
                    // line generates no coherence traffic, and under a
                    // preemptive scheduler pairing is dominated by timeslice
                    // preemption while WAITING, not by the real-time width of
                    // the window.
                    if slot.load(Ordering::Acquire) == CAPTURED {
                        ctx.record(StepKind::Elimination);
                        slot.store(EMPTY, Ordering::Release);
                        return PrismOutcome::Combined;
                    }
                }
                ctx.record(StepKind::Elimination);
                // lint: relaxed-ok(slot handshake RMW both acquires the peer write and releases ours)
                match slot.compare_exchange(WAITING, EMPTY, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => PrismOutcome::FellThrough,
                    Err(_) => {
                        // The only transition out of WAITING not made by us
                        // is a partner's capture: we were paired after the
                        // window closed. Reset the slot and combine.
                        ctx.record(StepKind::Elimination);
                        slot.store(EMPTY, Ordering::Release);
                        PrismOutcome::Combined
                    }
                }
            }
            WAITING => {
                ctx.record(StepKind::Elimination);
                if slot
                    .compare_exchange(WAITING, CAPTURED, Ordering::AcqRel, Ordering::Acquire) // lint: relaxed-ok(slot handshake RMW both acquires the peer write and releases ours)
                    .is_ok()
                {
                    self.pairs.fetch_add(1, Ordering::AcqRel); // lint: relaxed-ok(pair counter RMW orders capture before the exit-side read)
                    PrismOutcome::Eliminated
                } else {
                    PrismOutcome::FellThrough
                }
            }
            // CAPTURED (or a lost race mid-exchange): the slot is busy
            // completing a pairing; don't wait on someone else's exchange.
            _ => PrismOutcome::FellThrough,
        }
    }
}

impl fmt::Debug for Prism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Prism")
            .field("slots", &self.slots.len())
            .field("spin_limit", &self.spin_limit)
            .field("pairs", &self.pairs())
            .finish()
    }
}

impl fmt::Display for Prism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prism(slots={}, pairs={})", self.width(), self.pairs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::process::ProcessId;
    use std::sync::Arc;

    fn ctx(id: usize) -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(id), 11)
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_are_rejected() {
        let _ = Prism::new(0, 8);
    }

    #[test]
    fn a_lone_token_falls_through_and_charges_elimination_steps() {
        let prism = Prism::new(1, 4);
        let mut ctx = ctx(0);
        assert_eq!(prism.visit(&mut ctx), PrismOutcome::FellThrough);
        let stats = ctx.stats();
        // Initial load + install CAS + timeout CAS, no coin flip (one slot).
        assert_eq!(stats.eliminations, 3);
        assert_eq!(stats.coin_flips, 0);
        assert_eq!(stats.total(), 0, "eliminations are a separate measure");
        assert_eq!(stats.total_all(), 3);
        assert_eq!(prism.pairs(), 0);
    }

    #[test]
    fn multi_slot_visits_charge_one_flip() {
        let prism = Prism::new(4, 2);
        let mut ctx = ctx(0);
        prism.visit(&mut ctx);
        assert_eq!(ctx.stats().coin_flips, 1);
    }

    #[test]
    fn outcome_weights_conserve_increments() {
        assert_eq!(PrismOutcome::Eliminated.weight(), 0);
        assert_eq!(PrismOutcome::Combined.weight(), 2);
        assert_eq!(PrismOutcome::FellThrough.weight(), 1);
        assert_eq!(
            PrismOutcome::Eliminated.weight() + PrismOutcome::Combined.weight(),
            2,
            "a pair carries exactly its two increments"
        );
    }

    #[test]
    fn concurrent_visits_conserve_total_weight() {
        // Total carried weight must equal the number of visits regardless of
        // how pairings and timeouts interleave. Sized down under miri (the
        // CI miri job runs this module).
        let (threads, per_thread, spin) = if cfg!(miri) {
            (3, 8, 32)
        } else {
            (8, 400, 2_000)
        };
        let prism = Arc::new(Prism::new(2, spin));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let prism = Arc::clone(&prism);
                std::thread::spawn(move || {
                    let mut ctx = ProcessCtx::new(ProcessId::new(t), 5);
                    let mut weight = 0u64;
                    let mut eliminated = 0u64;
                    let mut combined = 0u64;
                    for _ in 0..per_thread {
                        let outcome = prism.visit(&mut ctx);
                        weight += outcome.weight();
                        match outcome {
                            PrismOutcome::Eliminated => eliminated += 1,
                            PrismOutcome::Combined => combined += 1,
                            PrismOutcome::FellThrough => {}
                        }
                    }
                    (weight, eliminated, combined)
                })
            })
            .collect();
        let mut weight = 0u64;
        let mut eliminated = 0u64;
        let mut combined = 0u64;
        for handle in handles {
            let (w, e, c) = handle.join().unwrap();
            weight += w;
            eliminated += e;
            combined += c;
        }
        let visits = (threads * per_thread) as u64;
        assert_eq!(weight, visits, "every increment is carried exactly once");
        assert_eq!(eliminated, combined, "pairings are symmetric");
        assert_eq!(prism.pairs(), eliminated);
        // All slots are EMPTY again at quiescence.
        for slot in prism.slots.iter() {
            assert_eq!(slot.load(Ordering::Acquire), EMPTY);
        }
    }

    #[test]
    fn slots_are_cache_padded() {
        let prism = Prism::new(2, 1);
        let a = &*prism.slots[0] as *const AtomicU64 as usize;
        let b = &*prism.slots[1] as *const AtomicU64 as usize;
        assert!(b - a >= 64);
    }

    #[test]
    fn display_and_debug_report_geometry() {
        let prism = Prism::new(3, 9);
        assert_eq!(format!("{prism}"), "prism(slots=3, pairs=0)");
        assert!(format!("{prism:?}").contains("spin_limit: 9"));
    }
}
