//! Balancing networks: comparator schedules reinterpreted as balancer wiring.
//!
//! A *balancing network* has exactly the layout of a comparator network —
//! wires and stages — with every comparator replaced by a
//! [`Balancer`]. A token enters on an input wire, is switched up or down by
//! each balancer it meets, and exits on an output wire. The repo already
//! compiles comparator layouts for the renaming networks, so a balancing
//! network is built by *reinterpreting* any [`ComparatorSchedule`]: the
//! schedule answers "which balancer touches my wire in the next stage?" and
//! the balancer decides which of its two wires the token continues on.
//!
//! [`BalancingNetwork`] is the interpreted reference engine: it queries the
//! schedule per stage and keeps its balancers in per-stage hash maps. The
//! compiled fast path lives in
//! [`CompiledBalancingNetwork`](crate::compiled::CompiledBalancingNetwork).
//! Both implement [`BalancingTopology`], the traversal interface the
//! [`NetworkCounter`](crate::counter::NetworkCounter) is generic over.

use crate::balancer::{Balancer, BalancerSlot};
use sortnet::network::Comparator;
use sortnet::schedule::ComparatorSchedule;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The wire a token continues on after a balancer routes it.
#[inline]
pub(crate) fn exit_wire(comparator: Comparator, slot: BalancerSlot) -> usize {
    match slot {
        BalancerSlot::Top => comparator.top,
        BalancerSlot::Bottom => comparator.bottom,
    }
}

/// Traversal interface of a balancing network: tokens in on a wire, tokens
/// out on a wire.
pub trait BalancingTopology: Send + Sync {
    /// Number of wires.
    fn width(&self) -> usize;

    /// Number of stages.
    fn depth(&self) -> usize;

    /// Total number of balancers.
    fn size(&self) -> usize;

    /// Routes one token from input `wire` to the output wire it exits on,
    /// toggling every balancer it meets (one
    /// [`StepKind::Balancer`](shmem::steps::StepKind) step each).
    ///
    /// # Panics
    ///
    /// Panics if `wire >= self.width()`.
    fn traverse(&self, ctx: &mut shmem::process::ProcessCtx, wire: usize) -> usize;
}

/// The interpreted balancing-network engine over any comparator schedule.
///
/// Balancers are materialized eagerly (they are one atomic word each), but
/// every traversal step goes through the schedule's
/// [`comparator_at`](ComparatorSchedule::comparator_at) query and a hash
/// lookup — the engine of choice for analytic or shared schedules. For the
/// flat-array fast path, compile the schedule into a
/// [`CompiledBalancingNetwork`](crate::compiled::CompiledBalancingNetwork).
///
/// # Example
///
/// ```
/// use cnet::family::CountingFamily;
/// use cnet::network::{BalancingNetwork, BalancingTopology};
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let network = BalancingNetwork::new(CountingFamily::Bitonic.schedule(4));
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
/// // A quiescent sequence of tokens exits on consecutive wires.
/// assert_eq!(network.traverse(&mut ctx, 0), 0);
/// assert_eq!(network.traverse(&mut ctx, 0), 1);
/// assert_eq!(network.traverse(&mut ctx, 0), 2);
/// assert_eq!(network.traverse(&mut ctx, 0), 3);
/// ```
pub struct BalancingNetwork<S: ComparatorSchedule = Arc<dyn ComparatorSchedule>> {
    schedule: S,
    /// One map per stage, keyed by the balancer's top wire.
    stages: Vec<HashMap<usize, Balancer>>,
}

impl<S: ComparatorSchedule> BalancingNetwork<S> {
    /// Reinterprets a comparator schedule as balancer wiring.
    pub fn new(schedule: S) -> Self {
        let stages = (0..schedule.depth())
            .map(|stage| {
                schedule
                    .stage_comparators(stage)
                    .into_iter()
                    .map(|comparator| (comparator.top, Balancer::new()))
                    .collect()
            })
            .collect();
        BalancingNetwork { schedule, stages }
    }

    /// The underlying comparator schedule.
    pub fn schedule(&self) -> &S {
        &self.schedule
    }

    /// The balancer touching `wire` in `stage`, if any (harness/test
    /// inspection).
    pub fn balancer_at(&self, stage: usize, wire: usize) -> Option<&Balancer> {
        let comparator = self.schedule.comparator_at(stage, wire)?;
        self.stages.get(stage)?.get(&comparator.top)
    }
}

impl<S: ComparatorSchedule> BalancingTopology for BalancingNetwork<S> {
    fn width(&self) -> usize {
        self.schedule.width()
    }

    fn depth(&self) -> usize {
        self.schedule.depth()
    }

    fn size(&self) -> usize {
        self.stages.iter().map(HashMap::len).sum()
    }

    fn traverse(&self, ctx: &mut shmem::process::ProcessCtx, wire: usize) -> usize {
        assert!(
            wire < self.width(),
            "entry wire {wire} is outside the network's {} wires",
            self.width()
        );
        let mut wire = wire;
        for (stage, balancers) in self.stages.iter().enumerate() {
            if let Some(comparator) = self.schedule.comparator_at(stage, wire) {
                let balancer = &balancers[&comparator.top];
                wire = exit_wire(comparator, balancer.toggle(ctx));
            }
        }
        wire
    }
}

impl<S: ComparatorSchedule> fmt::Debug for BalancingNetwork<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BalancingNetwork")
            .field("width", &self.width())
            .field("depth", &self.depth())
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::CountingFamily;
    use shmem::process::{ProcessCtx, ProcessId};

    fn ctx() -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(0), 5)
    }

    #[test]
    fn dimensions_mirror_the_schedule() {
        let schedule = CountingFamily::Periodic.schedule(8);
        let network = BalancingNetwork::new(Arc::clone(&schedule));
        assert_eq!(network.width(), 8);
        assert_eq!(network.depth(), schedule.depth());
        assert_eq!(
            network.size(),
            (0..schedule.depth())
                .map(|s| schedule.stage_comparators(s).len())
                .sum::<usize>()
        );
        assert!(format!("{network:?}").contains("BalancingNetwork"));
    }

    #[test]
    fn sequential_tokens_fill_output_wires_in_order() {
        for family in CountingFamily::all() {
            for width in [2usize, 4, 8] {
                let network = BalancingNetwork::new(family.schedule(width));
                let mut ctx = ctx();
                for round in 0..3 {
                    for expected in 0..width {
                        // All tokens enter on the same wire; the step
                        // property forces round-robin exits.
                        let exit = network.traverse(&mut ctx, 0);
                        assert_eq!(exit, expected, "{family} width {width} round {round}");
                    }
                }
            }
        }
    }

    #[test]
    fn traversal_charges_one_toggle_per_met_balancer() {
        let network = BalancingNetwork::new(CountingFamily::Bitonic.schedule(4));
        let mut ctx = ctx();
        network.traverse(&mut ctx, 0);
        // Bitonic width 4 touches every wire in every stage: depth toggles.
        assert_eq!(ctx.stats().balancer_toggles, network.depth() as u64);
        assert_eq!(ctx.stats().total(), 0);
    }

    #[test]
    fn balancer_at_exposes_the_wiring() {
        let network = BalancingNetwork::new(CountingFamily::Bitonic.schedule(4));
        let mut ctx = ctx();
        network.traverse(&mut ctx, 0);
        let first = network
            .balancer_at(0, 0)
            .expect("wire 0 is busy in stage 0");
        assert_eq!(first.tokens(), 1);
        assert!(network.balancer_at(99, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "outside the network")]
    fn out_of_range_entry_wires_are_rejected() {
        let network = BalancingNetwork::new(CountingFamily::Bitonic.schedule(4));
        network.traverse(&mut ctx(), 4);
    }
}
