//! The wirings certified as counting networks.
//!
//! Not every sorting network counts. Reinterpreting comparators as balancers
//! preserves the step property only for specific constructions: the
//! **bitonic** network and the **periodic** (Dowd–Perl–Rudolph–Saks /
//! Aspnes–Herlihy–Shavit) network, both at power-of-two widths, are the two
//! classical counting networks. Batcher's odd-even merge — the default
//! renaming-network basis of this workspace — is the textbook
//! counterexample, and the one-pass odd-even transposition wiring fails
//! too, as does a truncated (non-power-of-two) bitonic network; the
//! workspace pins all three failures with regression tests
//! (`tests/cnet_properties.rs`).
//!
//! [`CountingFamily`] therefore restricts the [`NetworkFamily`] menu to the
//! certified wirings, and the `TryFrom` conversion turns the uncertified
//! families into a configuration error instead of a silently broken counter.

use sortnet::family::{NetworkFamily, SortingFamily};
use sortnet::schedule::ComparatorSchedule;
use std::fmt;
use std::sync::Arc;

/// A balancing-network wiring certified to satisfy the step property.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CountingFamily {
    /// The bitonic counting network (Aspnes–Herlihy–Shavit): `Θ(log² w)`
    /// depth, the classical default.
    #[default]
    Bitonic,
    /// The periodic counting network: `log w` identical blocks of depth
    /// `log w`. Same asymptotics as bitonic with a perfectly regular layout.
    Periodic,
}

impl CountingFamily {
    /// Both certified families, in the order experiments report them.
    pub fn all() -> [CountingFamily; 2] {
        [CountingFamily::Bitonic, CountingFamily::Periodic]
    }

    /// Human-readable family name (used in experiment tables).
    pub fn name(&self) -> &'static str {
        match self {
            CountingFamily::Bitonic => "bitonic",
            CountingFamily::Periodic => "periodic",
        }
    }

    /// The underlying sorting-network family of this wiring.
    pub fn network_family(&self) -> NetworkFamily {
        match self {
            CountingFamily::Bitonic => NetworkFamily::Bitonic,
            CountingFamily::Periodic => NetworkFamily::Periodic,
        }
    }

    /// Builds the comparator schedule whose balancer reinterpretation is the
    /// counting network of this family.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two or is below 2: the counting
    /// property of both families is only certified at power-of-two widths
    /// (truncated networks still *sort*, but provably miscount).
    pub fn schedule(&self, width: usize) -> Arc<dyn ComparatorSchedule> {
        assert!(
            width >= 2 && width.is_power_of_two(),
            "counting networks require a power-of-two width of at least 2, got {width}"
        );
        self.network_family().schedule(width)
    }
}

impl fmt::Display for CountingFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error produced when a sorting-network family has no certified counting
/// wiring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UncertifiedWiring {
    /// The rejected family.
    pub family: NetworkFamily,
}

impl fmt::Display for UncertifiedWiring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "the {} wiring is not a certified counting network (its balancer \
             reinterpretation violates the step property); use the bitonic or \
             periodic family",
            self.family.name()
        )
    }
}

impl std::error::Error for UncertifiedWiring {}

impl TryFrom<NetworkFamily> for CountingFamily {
    type Error = UncertifiedWiring;

    /// Maps the sorting-network families onto their counting-certified
    /// wirings. [`NetworkFamily::OddEven`] and
    /// [`NetworkFamily::Transposition`] are rejected: both are fine sorting
    /// networks whose balancer reinterpretation provably miscounts.
    fn try_from(family: NetworkFamily) -> Result<Self, Self::Error> {
        match family {
            NetworkFamily::Bitonic => Ok(CountingFamily::Bitonic),
            NetworkFamily::Periodic => Ok(CountingFamily::Periodic),
            NetworkFamily::OddEven | NetworkFamily::Transposition => {
                Err(UncertifiedWiring { family })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_have_the_expected_shape() {
        let bitonic = CountingFamily::Bitonic.schedule(8);
        assert_eq!(bitonic.width(), 8);
        assert_eq!(bitonic.depth(), 6); // 3 * 4 / 2
        let periodic = CountingFamily::Periodic.schedule(8);
        assert_eq!(periodic.width(), 8);
        assert_eq!(periodic.depth(), 9); // 3 blocks of depth 3
    }

    #[test]
    fn certified_wirings_are_sorting_networks() {
        // The 0-1 principle transfers: both counting wirings sort, which the
        // sortnet verifier checks exhaustively.
        for family in CountingFamily::all() {
            for width in [2usize, 4, 8] {
                let network = family.schedule(width).materialize();
                assert!(
                    sortnet::verify::is_sorting_network_exhaustive(&network),
                    "{family} width {width}"
                );
            }
        }
    }

    #[test]
    fn conversion_accepts_only_certified_families() {
        assert_eq!(
            CountingFamily::try_from(NetworkFamily::Bitonic),
            Ok(CountingFamily::Bitonic)
        );
        assert_eq!(
            CountingFamily::try_from(NetworkFamily::Periodic),
            Ok(CountingFamily::Periodic)
        );
        for rejected in [NetworkFamily::OddEven, NetworkFamily::Transposition] {
            let error = CountingFamily::try_from(rejected).unwrap_err();
            assert_eq!(error.family, rejected);
            assert!(error.to_string().contains("step property"));
        }
    }

    #[test]
    fn names_and_default_are_stable() {
        assert_eq!(CountingFamily::default(), CountingFamily::Bitonic);
        assert_eq!(CountingFamily::Bitonic.to_string(), "bitonic");
        assert_eq!(CountingFamily::Periodic.to_string(), "periodic");
        assert_eq!(
            CountingFamily::Periodic.network_family(),
            NetworkFamily::Periodic
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two width")]
    fn non_power_of_two_widths_are_rejected() {
        let _ = CountingFamily::Bitonic.schedule(6);
    }
}
