//! The compiled balancing-network fast path.
//!
//! [`CompiledBalancingNetwork`] reuses the renaming engine's
//! [`CompiledSchedule`] lowering wholesale: the schedule's flat
//! `depth × width` wire map answers "which balancer touches my wire?" with
//! one array load, and the dense stage-major comparator index doubles as the
//! index into a flat slab of [`Balancer`]s — exactly the layout the
//! lock-free comparator slab uses for test-and-sets, minus the locks it
//! never needed. A token's traversal is `depth` iterations of
//! load-wire-map → fetch-add → pick-wire, with no hashing and no pointer
//! chasing.

use crate::balancer::Balancer;
use crate::network::{exit_wire, BalancingTopology};
use shmem::arena::Arena;
use sortnet::compiled::CompiledSchedule;
use sortnet::schedule::ComparatorSchedule;
use std::fmt;
use std::sync::Arc;

/// A balancing network lowered onto [`CompiledSchedule`]'s flat arrays.
///
/// # Example
///
/// ```
/// use cnet::compiled::CompiledBalancingNetwork;
/// use cnet::family::CountingFamily;
/// use cnet::network::BalancingTopology;
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let network = CompiledBalancingNetwork::compile(&*CountingFamily::Bitonic.schedule(8));
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
/// let exits: Vec<usize> = (0..8).map(|_| network.traverse(&mut ctx, 0)).collect();
/// assert_eq!(exits, vec![0, 1, 2, 3, 4, 5, 6, 7]);
/// ```
pub struct CompiledBalancingNetwork {
    schedule: CompiledSchedule,
    /// One balancer per comparator, indexed by the schedule's dense slot.
    balancers: Vec<Balancer>,
}

impl CompiledBalancingNetwork {
    /// Compiles any comparator schedule and attaches one balancer per
    /// comparator slot.
    pub fn compile<S: ComparatorSchedule + ?Sized>(schedule: &S) -> Self {
        Self::from_schedule(CompiledSchedule::compile(schedule))
    }

    /// Reinterprets an already-compiled schedule as balancer wiring.
    pub fn from_schedule(schedule: CompiledSchedule) -> Self {
        let balancers = (0..schedule.size()).map(|_| Balancer::new()).collect();
        CompiledBalancingNetwork {
            schedule,
            balancers,
        }
    }

    /// Like [`CompiledBalancingNetwork::compile`], but places every
    /// balancer's toggle word in `arena` — the cross-process constructor.
    /// The handle structs (wire map, slab of [`Balancer`] handles) stay
    /// process-local and are inherited by value across `fork`; only the
    /// toggle words they point at are shared. Allocates
    /// [`CompiledBalancingNetwork::footprint`] arena bytes.
    pub fn compile_in<S: ComparatorSchedule + ?Sized>(schedule: &S, arena: &Arc<Arena>) -> Self {
        Self::from_schedule_in(CompiledSchedule::compile(schedule), arena)
    }

    /// Reinterprets an already-compiled schedule as balancer wiring with
    /// arena-resident toggle words (see
    /// [`CompiledBalancingNetwork::compile_in`]).
    pub fn from_schedule_in(schedule: CompiledSchedule, arena: &Arc<Arena>) -> Self {
        let balancers = (0..schedule.size())
            .map(|_| Balancer::new_in(arena))
            .collect();
        CompiledBalancingNetwork {
            schedule,
            balancers,
        }
    }

    /// The number of arena bytes [`CompiledBalancingNetwork::compile_in`]
    /// allocates for a schedule of `size` comparators: one 64-byte line per
    /// balancer toggle word.
    pub fn footprint(size: usize) -> usize {
        size * 64
    }

    /// The compiled schedule backing the wiring.
    pub fn schedule(&self) -> &CompiledSchedule {
        &self.schedule
    }

    /// The balancer at the given dense slot (harness/test inspection).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.size()`.
    pub fn balancer(&self, slot: usize) -> &Balancer {
        &self.balancers[slot]
    }

    /// Total tokens that have passed each balancer, in dense order
    /// (harness/test inspection; meaningful at quiescent points).
    pub fn balancer_tokens(&self) -> Vec<u64> {
        self.balancers.iter().map(Balancer::tokens).collect()
    }
}

impl BalancingTopology for CompiledBalancingNetwork {
    fn width(&self) -> usize {
        self.schedule.width()
    }

    fn depth(&self) -> usize {
        self.schedule.depth()
    }

    fn size(&self) -> usize {
        self.balancers.len()
    }

    fn traverse(&self, ctx: &mut shmem::process::ProcessCtx, wire: usize) -> usize {
        assert!(
            wire < self.width(),
            "entry wire {wire} is outside the network's {} wires",
            self.width()
        );
        let mut wire = wire;
        for stage in 0..self.schedule.depth() {
            if let Some((comparator, slot)) = self.schedule.pair_at(stage, wire) {
                wire = exit_wire(comparator, self.balancers[slot].toggle(ctx));
            }
        }
        wire
    }
}

impl fmt::Debug for CompiledBalancingNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledBalancingNetwork")
            .field("width", &self.width())
            .field("depth", &self.depth())
            .field("size", &self.size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::CountingFamily;
    use crate::network::BalancingNetwork;
    use shmem::process::{ProcessCtx, ProcessId};
    use std::sync::Arc;

    #[test]
    fn compiled_and_interpreted_engines_route_identically() {
        for family in CountingFamily::all() {
            for width in [2usize, 4, 8, 16] {
                let schedule = family.schedule(width);
                let interpreted = BalancingNetwork::new(Arc::clone(&schedule));
                let compiled = CompiledBalancingNetwork::compile(&*schedule);
                assert_eq!(compiled.width(), interpreted.width());
                assert_eq!(compiled.depth(), interpreted.depth());
                assert_eq!(compiled.size(), interpreted.size());
                let mut a = ProcessCtx::new(ProcessId::new(0), 9);
                let mut b = ProcessCtx::new(ProcessId::new(0), 9);
                // Identical token sequences produce identical exits: the
                // engines are the same wiring over the same toggle states.
                for token in 0..4 * width {
                    let wire = token % width;
                    assert_eq!(
                        compiled.traverse(&mut a, wire),
                        interpreted.traverse(&mut b, wire),
                        "{family} width {width} token {token}"
                    );
                }
                assert_eq!(a.stats(), b.stats(), "step accounting agrees");
            }
        }
    }

    #[test]
    fn balancer_tokens_are_exposed_in_dense_order() {
        let compiled = CompiledBalancingNetwork::compile(&*CountingFamily::Bitonic.schedule(4));
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 2);
        compiled.traverse(&mut ctx, 0);
        let tokens = compiled.balancer_tokens();
        assert_eq!(tokens.len(), compiled.size());
        // One token traversed depth balancers (bitonic-4 is fully busy).
        assert_eq!(
            tokens.iter().sum::<u64>(),
            compiled.depth() as u64,
            "one toggle per stage"
        );
        assert_eq!(compiled.balancer(0).tokens(), tokens[0]);
        assert!(format!("{compiled:?}").contains("CompiledBalancingNetwork"));
    }

    #[test]
    fn arena_backed_network_routes_identically_to_the_private_one() {
        use shmem::arena::Arena;

        let schedule = CountingFamily::Bitonic.schedule(8);
        let arena = Arena::heap(CompiledBalancingNetwork::footprint(
            CompiledSchedule::compile(&*schedule).size(),
        ));
        let private = CompiledBalancingNetwork::compile(&*schedule);
        let shared = CompiledBalancingNetwork::compile_in(&*schedule, &arena);
        assert_eq!(
            arena.used(),
            CompiledBalancingNetwork::footprint(shared.size())
        );
        let mut a = ProcessCtx::new(ProcessId::new(0), 5);
        let mut b = ProcessCtx::new(ProcessId::new(0), 5);
        for token in 0..32 {
            let wire = token % 8;
            assert_eq!(
                private.traverse(&mut a, wire),
                shared.traverse(&mut b, wire),
                "token {token}"
            );
        }
        assert_eq!(private.balancer_tokens(), shared.balancer_tokens());
    }

    #[test]
    #[should_panic(expected = "outside the network")]
    fn out_of_range_entry_wires_are_rejected() {
        let compiled = CompiledBalancingNetwork::compile(&*CountingFamily::Bitonic.schedule(4));
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        compiled.traverse(&mut ctx, 9);
    }
}
