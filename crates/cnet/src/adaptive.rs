//! The adaptive counter: an elimination front-end routing into a cascade of
//! counting networks sized to *realized* contention.
//!
//! A fixed-width network counter pays its full `Θ(log² w)` depth on every
//! increment even when it runs alone, while a width provisioned for the
//! worst case is exactly what the source paper argues against: cost should
//! scale with the contention `k` an execution actually exhibits, not the
//! maximum `n` it was provisioned for. [`AdaptiveNetworkCounter`] follows
//! the sandwich construction of the adaptive counting literature (§6 of the
//! counting-network chapters in Aspnes' notes):
//!
//! 1. a [`ContentionSensor`] — a cache-padded EWMA of recent collision and
//!    miss events — estimates how many increments are currently in flight;
//! 2. the token enters the **narrowest layer whose width covers the
//!    estimate**: a width-2 network when the counter is quiet, up to the
//!    full provisioned width under load;
//! 3. each layer fronts its network with an elimination [`Prism`]: under
//!    contention two colliding increments pair off, one returning
//!    immediately while the other carries a weight-2 token, halving traffic
//!    through the balancers exactly when it matters.
//!
//! At low contention an increment costs a sensor read, a short prism
//! window and a *single* balancer toggle (the width-2 layer) — versus the
//! ~11 shared steps of a fixed width-16 network — while at high contention
//! elimination plus the full-width layer reproduce the classical
//! contention-spreading behaviour.
//!
//! # Consistency
//!
//! Every layer is an independent quiescently-consistent counter; a read sums
//! all layers. At any quiescent point each layer's deposited weights equal
//! the increments routed to it, so the sum is exact, and each layer's
//! *token* counts satisfy the step property
//! ([`check_step_property`](AdaptiveNetworkCounter::check_step_property)).
//! Because a weight-2 combiner is a single token through the wiring, the
//! exit wires pack `(tokens, value)` into one atomic word: the step-property
//! oracle checks the token halves, reads sum the value halves. The packing
//! caps each exit wire at `2³²` deposits — far beyond any harness run, and
//! checked nowhere hot.
//!
//! Routing different increments to different layers is also why the adaptive
//! counter exposes *counting* only (increment/read) and not the network
//! counter's exact fetch-and-increment tickets: tickets would need a total
//! order across layers, which the cascade deliberately does not maintain.
//! Like the prism itself, exactness assumes crash-free executions (see the
//! crash note in [`crate::prism`]).

use crate::compiled::CompiledBalancingNetwork;
use crate::family::CountingFamily;
use crate::network::BalancingTopology;
use crate::prism::{Prism, PrismOutcome};
use crate::verify::{step_property_violation, StepViolation};
use shmem::pad::CachePadded;
use shmem::process::ProcessCtx;
use shmem::steps::StepKind;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-point scale of the sensor's contention estimate (8 fraction bits).
const FP_ONE: u64 = 256;
/// EWMA smoothing: new = old − old/2^ALPHA + sample/2^ALPHA (α = 1/8).
const ALPHA_SHIFT: u32 = 3;
/// Clean fall-throughs feed the sensor once every this many (on average):
/// misses are the common case, and sampling keeps the sensor word from
/// becoming the very serialization point the cascade exists to avoid.
const MISS_SAMPLE_PERIOD: usize = 8;
/// Spin window of the narrowest layer's prism; each wider layer doubles it
/// (wider layers are only entered under contention, where waiting longer
/// makes pairing more likely).
const BASE_SPIN: u32 = 16;

/// A cache-padded EWMA of recent prism collision/miss events, estimating the
/// number of concurrently in-flight increments.
///
/// The estimate is stored as a fixed-point word (×256). Observations are a
/// *single* compare-and-swap attempt: under contention a failed CAS means
/// another process just folded in its own sample, which serves the estimate
/// equally well, so there is nothing to retry.
pub struct ContentionSensor {
    estimate: CachePadded<AtomicU64>,
}

impl ContentionSensor {
    /// Creates a sensor that initially estimates one lone process.
    pub fn new() -> Self {
        ContentionSensor {
            estimate: CachePadded::new(AtomicU64::new(FP_ONE)),
        }
    }

    /// The current contention estimate, in processes (≥ 0).
    pub fn estimate(&self) -> f64 {
        self.estimate.load(Ordering::Acquire) as f64 / FP_ONE as f64
    }

    /// Reads the estimate for routing, charging one register read.
    fn load_for_routing(&self, ctx: &mut ProcessCtx) -> u64 {
        ctx.record(StepKind::RegisterRead);
        self.estimate.load(Ordering::Acquire)
    }

    /// Folds a sample of `tokens` concurrently-active processes into the
    /// EWMA with one read and at most one CAS attempt (never retried).
    /// Charges one register read and one read-modify-write.
    pub fn observe(&self, ctx: &mut ProcessCtx, tokens: u64) {
        ctx.record(StepKind::RegisterRead);
        let old = self.estimate.load(Ordering::Acquire);
        let new = old - (old >> ALPHA_SHIFT) + ((tokens * FP_ONE) >> ALPHA_SHIFT);
        ctx.record(StepKind::ReadModifyWrite);
        let _ = self
            .estimate
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire); // lint: relaxed-ok(RMW success needs Acquire+Release: publishes the new tally, observes prior ones)
    }

    /// The narrowest level (0-indexed) among `levels` power-of-two layers
    /// (widths 2, 4, 8, …) that covers a fixed-point estimate.
    fn level_for(estimate_fp: u64, levels: usize) -> usize {
        let tokens = estimate_fp.div_ceil(FP_ONE).max(1);
        let width = tokens.next_power_of_two().max(2);
        let level = width.trailing_zeros() as usize - 1;
        level.min(levels - 1)
    }
}

impl Default for ContentionSensor {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ContentionSensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContentionSensor")
            .field("estimate", &self.estimate())
            .finish()
    }
}

/// One rung of the cascade: an elimination prism in front of a counting
/// network with packed `(tokens, value)` exit wires.
#[derive(Debug)]
struct PrismLayer {
    prism: Prism,
    network: CompiledBalancingNetwork,
    /// One packed word per output wire (padded): the high 32 bits count
    /// deposited *tokens* (step-property oracle), the low 32 bits accumulate
    /// deposited *weight* (the counter's value).
    exits: Vec<CachePadded<AtomicU64>>,
}

impl PrismLayer {
    fn new(family: CountingFamily, width: usize, spin_limit: u32) -> Self {
        let network = CompiledBalancingNetwork::compile(&*family.schedule(width));
        PrismLayer {
            prism: Prism::new((width / 2).max(1), spin_limit),
            network,
            exits: (0..width)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    fn width(&self) -> usize {
        self.network.width()
    }

    /// Deposits a traversed token of the given weight on its exit wire with
    /// one fetch-and-add on the packed word.
    fn deposit(&self, ctx: &mut ProcessCtx, wire: usize, weight: u64) {
        ctx.record(StepKind::ReadModifyWrite);
        self.exits[wire].fetch_add((1 << 32) | weight, Ordering::AcqRel); // lint: relaxed-ok(exit tallies are published and read via this one RMW)
    }

    fn token_counts(&self) -> Vec<u64> {
        self.exits
            .iter()
            .map(|e| e.load(Ordering::Acquire) >> 32)
            .collect()
    }

    fn value(&self) -> u64 {
        self.exits
            .iter()
            .map(|e| e.load(Ordering::Acquire) & 0xFFFF_FFFF)
            .sum()
    }

    /// Reads the layer's value, charging one register read per exit wire.
    fn read(&self, ctx: &mut ProcessCtx) -> u64 {
        self.exits
            .iter()
            .map(|e| {
                ctx.record(StepKind::RegisterRead);
                e.load(Ordering::Acquire) & 0xFFFF_FFFF
            })
            .sum()
    }
}

/// A quiescently-consistent counter whose per-increment cost adapts to
/// realized contention: an elimination/diffraction front-end over a cascade
/// of counting networks of widths 2, 4, …, `max_width`.
///
/// # Example
///
/// ```
/// use cnet::adaptive::AdaptiveNetworkCounter;
/// use cnet::family::CountingFamily;
/// use shmem::process::{ProcessCtx, ProcessId};
///
/// let counter = AdaptiveNetworkCounter::new(CountingFamily::Bitonic, 16);
/// let mut ctx = ProcessCtx::new(ProcessId::new(0), 1);
/// counter.increment(&mut ctx);
/// counter.increment(&mut ctx);
/// assert_eq!(counter.read(&mut ctx), 2);
/// assert!(counter.check_step_property().is_ok());
/// // Alone, tokens route through the narrowest (width-2) layer.
/// assert_eq!(counter.current_width(), 2);
/// ```
pub struct AdaptiveNetworkCounter {
    layers: Vec<PrismLayer>,
    sensor: ContentionSensor,
}

impl AdaptiveNetworkCounter {
    /// Builds a cascade of `family` networks at every power-of-two width
    /// from 2 up to `max_width`.
    ///
    /// # Panics
    ///
    /// Panics if `max_width` is not a power of two or is below 2 (see
    /// [`CountingFamily::schedule`]).
    pub fn new(family: CountingFamily, max_width: usize) -> Self {
        assert!(
            max_width.is_power_of_two() && max_width >= 2,
            "adaptive cascade needs a power-of-two width of at least 2, got {max_width}"
        );
        let levels = max_width.trailing_zeros() as usize;
        AdaptiveNetworkCounter {
            layers: (0..levels)
                .map(|level| PrismLayer::new(family, 2 << level, BASE_SPIN << level))
                .collect(),
            sensor: ContentionSensor::new(),
        }
    }

    /// The widest layer's width (the provisioned maximum).
    pub fn max_width(&self) -> usize {
        self.layers.last().expect("at least one layer").width()
    }

    /// The widths of the cascade's layers, narrowest first.
    pub fn layer_widths(&self) -> Vec<usize> {
        self.layers.iter().map(PrismLayer::width).collect()
    }

    /// The width new increments currently route to (diagnostic; racy by
    /// nature).
    pub fn current_width(&self) -> usize {
        let fp = self.sensor.estimate.load(Ordering::Acquire);
        self.layers[ContentionSensor::level_for(fp, self.layers.len())].width()
    }

    /// The sensor's current contention estimate, in processes.
    pub fn contention_estimate(&self) -> f64 {
        self.sensor.estimate()
    }

    /// Completed prism eliminations across all layers (each pair once).
    pub fn eliminated_pairs(&self) -> u64 {
        self.layers.iter().map(|l| l.prism.pairs()).sum()
    }

    /// Increments the counter.
    ///
    /// The token is routed to the layer covering the sensor's estimate,
    /// offered to that layer's prism, and — unless eliminated — carried
    /// through the layer's network and deposited with its weight.
    pub fn increment(&self, ctx: &mut ProcessCtx) {
        let increment_timer = obs::start();
        let fp = self.sensor.load_for_routing(ctx);
        let level = ContentionSensor::level_for(fp, self.layers.len());
        let layer = &self.layers[level];
        obs::count(obs::Metric::AdaptiveIncrement);
        obs::gauge(obs::Metric::SensorEstimateFp, fp);
        obs::gauge(obs::Metric::RoutedWidth, layer.width() as u64);
        if level > 0 {
            obs::count(obs::Metric::AdaptiveRouteUp);
        }
        let outcome = layer.prism.visit(ctx);
        match outcome {
            PrismOutcome::Eliminated => {
                // A collision is strong evidence of contention beyond this
                // layer's width: report enough tokens to widen the route.
                self.sensor.observe(ctx, 2 * layer.width() as u64);
                obs::count(obs::Metric::PrismEliminated);
                obs::finish(increment_timer, obs::Metric::AdaptiveIncrementNs);
                return;
            }
            PrismOutcome::Combined => {
                self.sensor.observe(ctx, 2 * layer.width() as u64);
                obs::count(obs::Metric::PrismCombined);
            }
            PrismOutcome::FellThrough => {
                obs::count(obs::Metric::PrismFellThrough);
                // Misses are the common (quiet) case; sample them so the
                // sensor word does not serialize the fast path.
                if ctx.random_index(MISS_SAMPLE_PERIOD) == 0 {
                    self.sensor.observe(ctx, 1);
                }
            }
        }
        let entry = ctx.id().as_usize() % layer.width();
        let wire = layer.network.traverse(ctx, entry);
        layer.deposit(ctx, wire, outcome.weight());
        obs::finish(increment_timer, obs::Metric::AdaptiveIncrementNs);
    }

    /// Reads the counter by summing every layer's exit wires, one register
    /// read per wire. Quiescently consistent: exact whenever no increment is
    /// in flight.
    pub fn read(&self, ctx: &mut ProcessCtx) -> u64 {
        self.layers.iter().map(|layer| layer.read(ctx)).sum()
    }

    /// The total count without charging steps (harness/test inspection;
    /// meaningful at quiescent points).
    pub fn peek(&self) -> u64 {
        self.layers.iter().map(PrismLayer::value).sum()
    }

    /// Per-layer deposited-token counts, narrowest layer first
    /// (harness/test inspection; each layer must satisfy the step property
    /// at quiescent points).
    pub fn layer_token_counts(&self) -> Vec<Vec<u64>> {
        self.layers.iter().map(PrismLayer::token_counts).collect()
    }

    /// Verifies the step property on every layer's token counts
    /// (harness/test inspection; meaningful at quiescent points).
    pub fn check_step_property(&self) -> Result<(), StepViolation> {
        for layer in &self.layers {
            if let Some(violation) = step_property_violation(&layer.token_counts()) {
                return Err(violation);
            }
        }
        Ok(())
    }
}

impl fmt::Debug for AdaptiveNetworkCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptiveNetworkCounter")
            .field("layer_widths", &self.layer_widths())
            .field("estimate", &self.contention_estimate())
            .field("eliminated_pairs", &self.eliminated_pairs())
            .field("tokens", &self.peek())
            .finish()
    }
}

impl fmt::Display for AdaptiveNetworkCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "adaptive(max_width={}, estimate={:.2}, count={})",
            self.max_width(),
            self.contention_estimate(),
            self.peek()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmem::process::ProcessId;
    use std::sync::Arc;

    fn ctx(id: usize) -> ProcessCtx {
        ProcessCtx::new(ProcessId::new(id), 23)
    }

    #[test]
    #[should_panic(expected = "power-of-two width")]
    fn non_power_of_two_cascades_are_rejected() {
        let _ = AdaptiveNetworkCounter::new(CountingFamily::Bitonic, 12);
    }

    #[test]
    fn cascade_builds_every_power_of_two_layer() {
        let counter = AdaptiveNetworkCounter::new(CountingFamily::Bitonic, 16);
        assert_eq!(counter.layer_widths(), vec![2, 4, 8, 16]);
        assert_eq!(counter.max_width(), 16);
        let narrow = AdaptiveNetworkCounter::new(CountingFamily::Periodic, 2);
        assert_eq!(narrow.layer_widths(), vec![2]);
    }

    #[test]
    fn sequential_increments_are_exact_and_stay_narrow() {
        let counter = AdaptiveNetworkCounter::new(CountingFamily::Bitonic, 16);
        let mut ctx = ctx(0);
        let rounds = if cfg!(miri) { 8 } else { 100 };
        for expected in 1..=rounds {
            counter.increment(&mut ctx);
            assert_eq!(counter.read(&mut ctx), expected);
            counter.check_step_property().expect("staircase per layer");
        }
        // A lone process never collides: the sensor stays at ~1 process and
        // every token takes the width-2 layer.
        assert_eq!(counter.current_width(), 2);
        assert_eq!(counter.eliminated_pairs(), 0);
        assert!(counter.contention_estimate() < 2.0);
        let counts = counter.layer_token_counts();
        assert_eq!(counts[0].iter().sum::<u64>(), rounds);
        assert!(counts[1..]
            .iter()
            .all(|layer| layer.iter().sum::<u64>() == 0));
    }

    #[test]
    fn a_quiet_increment_is_far_cheaper_than_a_wide_network() {
        let counter = AdaptiveNetworkCounter::new(CountingFamily::Bitonic, 16);
        let mut ctx = ctx(0);
        counter.increment(&mut ctx);
        let stats = ctx.stats();
        // Sensor read + ≤3 prism ops + one width-2 toggle + deposit (+ maybe
        // a sampled sensor observation): well under the ~11 steps of a
        // fixed width-16 traversal.
        assert_eq!(stats.balancer_toggles, 1, "width-2 bitonic has depth 1");
        assert!(stats.eliminations <= 3);
        assert!(stats.total_all() <= 9, "got {}", stats.total_all());
    }

    #[test]
    fn collisions_widen_the_route_and_misses_narrow_it_back() {
        let counter = AdaptiveNetworkCounter::new(CountingFamily::Bitonic, 16);
        let mut ctx = ctx(0);
        // Simulated collision burst on the width-2 layer (sample = 4).
        for _ in 0..32 {
            counter.sensor.observe(&mut ctx, 4);
        }
        assert!(counter.contention_estimate() > 2.0);
        assert_eq!(counter.current_width(), 4);
        // Heavy collisions at width 4 push wider still.
        for _ in 0..32 {
            counter.sensor.observe(&mut ctx, 16);
        }
        assert_eq!(counter.current_width(), 16);
        // A quiet spell decays the estimate back down to the narrow layer.
        for _ in 0..64 {
            counter.sensor.observe(&mut ctx, 1);
        }
        assert_eq!(counter.current_width(), 2);
    }

    #[test]
    fn concurrent_increments_are_exact_at_quiescence() {
        let (threads, per_thread) = if cfg!(miri) { (3, 8) } else { (8, 300) };
        let counter = Arc::new(AdaptiveNetworkCounter::new(CountingFamily::Bitonic, 8));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut ctx = ProcessCtx::new(ProcessId::new(t), 31);
                    for _ in 0..per_thread {
                        counter.increment(&mut ctx);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(counter.peek(), (threads * per_thread) as u64);
        counter.check_step_property().expect("staircase per layer");
        let mut reader = ctx(99);
        assert_eq!(counter.read(&mut reader), (threads * per_thread) as u64);
    }

    #[test]
    fn display_and_debug_report_the_cascade() {
        let counter = AdaptiveNetworkCounter::new(CountingFamily::Bitonic, 4);
        assert!(format!("{counter}").starts_with("adaptive(max_width=4"));
        let debug = format!("{counter:?}");
        assert!(debug.contains("layer_widths"));
        assert!(debug.contains("eliminated_pairs"));
    }
}
