//! Step-property verification and sequential token simulation.
//!
//! The correctness notion of a counting network is the **step property**: in
//! any quiescent state the output-wire token counts `y₀, …, y_{w−1}` satisfy
//! `0 ≤ yᵢ − yⱼ ≤ 1` for every `i < j` — the counts look like a staircase
//! filled from wire 0. This module makes the property executable:
//!
//! * [`step_property_violation`] / [`has_step_property`] check a quiescent
//!   count vector directly (used on live [`NetworkCounter`] exit counts at
//!   quiescent points).
//! * [`simulate_tokens`] routes a sequence of tokens through a wiring
//!   *purely* — no atomics, no step accounting — and
//!   [`sequential_step_property`] additionally checks the property after
//!   every token. Because every prefix of a sequential execution ends in a
//!   quiescent state, this is the 0-1-principle-style exhaustive/randomized
//!   test harness for candidate wirings, and is how the workspace pins that
//!   odd-even merge and one-pass transposition wirings are *not* counting
//!   networks.
//!
//! [`NetworkCounter`]: crate::counter::NetworkCounter

use sortnet::schedule::ComparatorSchedule;
use std::collections::HashMap;
use std::fmt;

/// A concrete violation of the step property.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepViolation {
    /// The lower-indexed wire.
    pub wire_low: usize,
    /// Tokens on the lower-indexed wire.
    pub count_low: u64,
    /// The higher-indexed wire.
    pub wire_high: usize,
    /// Tokens on the higher-indexed wire.
    pub count_high: u64,
    /// Tokens routed when the violation was detected (for the sequential
    /// checker; the vector length for direct checks).
    pub tokens: usize,
}

impl fmt::Display for StepViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step property violated after {} tokens: wire {} holds {} tokens but wire {} holds {}",
            self.tokens, self.wire_low, self.count_low, self.wire_high, self.count_high
        )
    }
}

impl std::error::Error for StepViolation {}

/// Returns the first step-property violation in a quiescent count vector, if
/// any: a pair `i < j` with `yᵢ − yⱼ` outside `[0, 1]`.
pub fn step_property_violation(counts: &[u64]) -> Option<StepViolation> {
    // The pairwise property is equivalent to: counts are non-increasing and
    // the first and last differ by at most 1 — checkable in one pass against
    // the running first element.
    for (low, window) in counts.windows(2).enumerate() {
        let (a, b) = (window[0], window[1]);
        if a < b || counts[0] > b + 1 {
            let (wire_low, wire_high) = if a < b { (low, low + 1) } else { (0, low + 1) };
            return Some(StepViolation {
                wire_low,
                count_low: counts[wire_low],
                wire_high,
                count_high: counts[wire_high],
                tokens: counts.len(),
            });
        }
    }
    None
}

/// Whether a quiescent count vector satisfies the step property.
pub fn has_step_property(counts: &[u64]) -> bool {
    step_property_violation(counts).is_none()
}

/// Whether a quiescent count vector is *smooth*: all counts within 1 of each
/// other (the weaker guarantee some balancing networks provide without
/// counting).
pub fn is_smooth(counts: &[u64]) -> bool {
    match (counts.iter().max(), counts.iter().min()) {
        (Some(max), Some(min)) => max - min <= 1,
        _ => true,
    }
}

/// Pure sequential token simulation: routes `entries` (input-wire indices)
/// one token at a time through the wiring and returns the final output-wire
/// counts. No atomics, no step accounting — this is the mathematical model,
/// used to certify or refute candidate wirings.
///
/// # Panics
///
/// Panics if an entry wire is outside the schedule's width.
pub fn simulate_tokens<S: ComparatorSchedule + ?Sized>(
    schedule: &S,
    entries: &[usize],
) -> Vec<u64> {
    run_simulation(schedule, entries, |_| {})
}

/// Sequential token simulation that checks the step property after every
/// token (every prefix of a sequential run is quiescent).
///
/// # Errors
///
/// Returns the first [`StepViolation`] encountered.
///
/// # Panics
///
/// Panics if an entry wire is outside the schedule's width.
pub fn sequential_step_property<S: ComparatorSchedule + ?Sized>(
    schedule: &S,
    entries: &[usize],
) -> Result<Vec<u64>, StepViolation> {
    let mut routed = 0usize;
    let mut violation: Option<StepViolation> = None;
    let counts = run_simulation(schedule, entries, |counts| {
        routed += 1;
        if violation.is_none() {
            if let Some(found) = step_property_violation(counts) {
                violation = Some(StepViolation {
                    tokens: routed,
                    ..found
                });
            }
        }
    });
    match violation {
        Some(found) => Err(found),
        None => Ok(counts),
    }
}

/// Shared simulation loop: `after_token` observes the counts after each
/// token exits.
fn run_simulation<S: ComparatorSchedule + ?Sized>(
    schedule: &S,
    entries: &[usize],
    mut after_token: impl FnMut(&[u64]),
) -> Vec<u64> {
    let width = schedule.width();
    let depth = schedule.depth();
    let mut toggles: HashMap<(usize, usize), bool> = HashMap::new();
    let mut counts = vec![0u64; width];
    for &entry in entries {
        assert!(
            entry < width,
            "entry wire {entry} is outside the wiring's {width} wires"
        );
        let mut wire = entry;
        for stage in 0..depth {
            if let Some(comparator) = schedule.comparator_at(stage, wire) {
                let toggle = toggles.entry((stage, comparator.top)).or_insert(false);
                wire = if *toggle {
                    comparator.bottom
                } else {
                    comparator.top
                };
                *toggle = !*toggle;
            }
        }
        counts[wire] += 1;
        after_token(&counts);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::CountingFamily;
    use sortnet::family::{NetworkFamily, SortingFamily};

    #[test]
    fn step_property_checks_staircases() {
        assert!(has_step_property(&[]));
        assert!(has_step_property(&[5]));
        assert!(has_step_property(&[3, 3, 3, 3]));
        assert!(has_step_property(&[4, 4, 3, 3]));
        assert!(!has_step_property(&[3, 4, 3, 3]), "increasing pair");
        assert!(!has_step_property(&[5, 4, 4, 3]), "first exceeds last by 2");
        assert!(!has_step_property(&[2, 2, 0]), "gap of 2");
    }

    #[test]
    fn violations_carry_the_offending_pair() {
        let violation = step_property_violation(&[1, 2]).expect("violated");
        assert_eq!((violation.wire_low, violation.wire_high), (0, 1));
        assert_eq!((violation.count_low, violation.count_high), (1, 2));
        assert!(violation.to_string().contains("step property violated"));

        let gap = step_property_violation(&[3, 2, 1]).expect("violated");
        assert_eq!((gap.wire_low, gap.wire_high), (0, 2));
        assert_eq!((gap.count_low, gap.count_high), (3, 1));
    }

    #[test]
    fn smoothness_is_weaker_than_the_step_property() {
        assert!(is_smooth(&[]));
        assert!(is_smooth(&[2, 3, 2, 3]), "smooth but not a staircase");
        assert!(!has_step_property(&[2, 3, 2, 3]));
        assert!(!is_smooth(&[3, 1]));
    }

    #[test]
    fn simulation_matches_the_live_counter() {
        use crate::counter::NetworkCounter;
        use shmem::process::{ProcessCtx, ProcessId};

        let width = 8usize;
        let schedule = CountingFamily::Bitonic.schedule(width);
        let entries: Vec<usize> = (0..3 * width).map(|t| (t * 5) % width).collect();

        let counter = NetworkCounter::new(CountingFamily::Bitonic, width);
        for &entry in &entries {
            // A context whose identifier maps onto the simulated entry wire.
            let mut ctx = ProcessCtx::new(ProcessId::new(entry), 1);
            counter.increment(&mut ctx);
        }
        assert_eq!(simulate_tokens(&*schedule, &entries), counter.exit_counts());
    }

    #[test]
    fn certified_wirings_pass_the_sequential_checker() {
        for family in CountingFamily::all() {
            for width in [2usize, 4, 8, 16] {
                let schedule = family.schedule(width);
                let entries: Vec<usize> = (0..4 * width).map(|t| (t * 7 + 3) % width).collect();
                let counts = sequential_step_property(&*schedule, &entries)
                    .unwrap_or_else(|violation| panic!("{family} width {width}: {violation}"));
                assert_eq!(counts.iter().sum::<u64>(), entries.len() as u64);
            }
        }
    }

    #[test]
    fn odd_even_merge_wiring_is_refuted() {
        // Batcher's odd-even merge sorts but does not count — the textbook
        // counterexample, reproduced mechanically: four tokens (three on
        // wire 0, one on wire 2) leave the width-4 wiring with counts
        // [2, 1, 1, 0], a staircase violation found by exhaustive search
        // over short entry sequences.
        let schedule = NetworkFamily::OddEven.schedule(4);
        let violation =
            sequential_step_property(&*schedule, &[0, 0, 0, 2]).expect_err("must miscount");
        assert_eq!(violation.count_low - violation.count_high, 2);
    }

    #[test]
    fn one_pass_transposition_wiring_is_refuted() {
        // Three tokens entering on wire 0 of the width-4 brick wall exit
        // with counts [2, 1, 0, 0]: wire 0 is two ahead of wire 2.
        let schedule = NetworkFamily::Transposition.schedule(4);
        let violation =
            sequential_step_property(&*schedule, &[0, 0, 0]).expect_err("must miscount");
        assert_eq!(violation.tokens, 3);
    }

    #[test]
    fn truncated_bitonic_wiring_is_refuted() {
        // Sorting survives truncation to non-power-of-two widths; counting
        // does not — which is why CountingFamily insists on powers of two.
        let schedule = NetworkFamily::Bitonic.schedule(6);
        let entries = vec![0usize; 12];
        assert!(sequential_step_property(&*schedule, &entries).is_err());
    }

    #[test]
    #[should_panic(expected = "outside the wiring")]
    fn out_of_range_entries_are_rejected() {
        let schedule = CountingFamily::Bitonic.schedule(4);
        let _ = simulate_tokens(&*schedule, &[4]);
    }
}
