//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_with_input`, `bench_function`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros — as a
//! straightforward wall-clock harness: each benchmark warms up for the
//! configured duration, then runs timed batches until the measurement window
//! elapses, and reports the mean, minimum and maximum time per iteration on
//! standard output. No statistics beyond that, no plots, no baselines; the
//! numbers are honest wall-clock means, which is what the repository's
//! `BENCH_*.json` artifacts record.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a displayable parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Measurement summary of one benchmark, in nanoseconds per iteration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sample {
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed iteration.
    pub min_ns: f64,
    /// Slowest observed iteration.
    pub max_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample: Sample,
}

impl Bencher {
    /// Runs `routine` repeatedly: first for the warm-up window, then for the
    /// measurement window, recording per-iteration wall-clock times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }

        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        while total < self.measurement {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            let ns = elapsed.as_nanos() as f64;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            total += elapsed;
            iterations += 1;
        }
        self.sample = Sample {
            mean_ns: if iterations == 0 {
                0.0
            } else {
                total.as_nanos() as f64 / iterations as f64
            },
            min_ns: if min_ns.is_finite() { min_ns } else { 0.0 },
            max_ns,
            iterations,
        };
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named collection of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion-compatibility knob; sampling here is time-driven, so the
    /// requested sample count is accepted and ignored.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Runs one benchmark over an input value.
    pub fn bench_with_input<P, F>(&mut self, id: BenchmarkId, input: &P, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample: Sample::default(),
        };
        f(&mut bencher, input);
        let s = bencher.sample;
        println!(
            "bench {}/{id}: {}/iter (min {}, max {}, {} iters)",
            self.name,
            format_ns(s.mean_ns),
            format_ns(s.min_ns),
            format_ns(s.max_ns),
            s.iterations
        );
        self
    }

    /// Runs one benchmark without a parameter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample: Sample::default(),
        };
        f(&mut bencher);
        let s = bencher.sample;
        println!(
            "bench {}/{name}: {}/iter (min {}, max {}, {} iters)",
            self.name,
            format_ns(s.mean_ns),
            format_ns(s.min_ns),
            format_ns(s.max_ns),
            s.iterations
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group with default windows (1 s warm-up, 3 s
    /// measurement, typically overridden by the benches).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            warm_up: Duration::from_secs(1),
            measurement: Duration::from_secs(3),
            _criterion: self,
        }
    }
}

/// Declares a set of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut bencher = Bencher {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            sample: Sample::default(),
        };
        let mut counter = 0u64;
        bencher.iter(|| {
            counter += 1;
            counter
        });
        assert!(bencher.sample.iterations > 0);
        assert!(bencher.sample.mean_ns > 0.0);
        assert!(bencher.sample.min_ns <= bencher.sample.max_ns);
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        let id = BenchmarkId::new("engine", 64);
        assert_eq!(id.to_string(), "engine/64");
    }
}
