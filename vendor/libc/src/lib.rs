//! Minimal offline stand-in for the `libc` crate.
//!
//! The build environment has no access to crates.io, so — like the other
//! `vendor/` crates — this declares only the tiny API subset the workspace
//! uses: anonymous shared mappings (`mmap`/`munmap`) for the
//! `shmem::arena` `MAP_SHARED` backend, and the `fork`/`kill`/`waitpid`
//! process-control calls the fork-based crash tests and multi-process
//! benches need. The declarations bind to the platform C library that the
//! Rust `std` already links, so no extra linkage is required.
//!
//! Everything here is `cfg(unix)`: on non-unix targets the crate compiles
//! to nothing and callers are expected to gate themselves the same way.

#![no_std]
#![allow(non_camel_case_types)]
#![allow(non_snake_case)]

#[cfg(unix)]
pub use self::unix::*;

#[cfg(unix)]
mod unix {
    use core::ffi::c_void;

    pub type c_int = i32;
    pub type c_char = i8;
    pub type size_t = usize;
    pub type off_t = i64;
    pub type pid_t = i32;

    // Protection and mapping flags (Linux values; identical on x86_64 and
    // aarch64, which are the targets this workspace builds on).
    pub const PROT_READ: c_int = 0x1;
    pub const PROT_WRITE: c_int = 0x2;
    pub const MAP_SHARED: c_int = 0x01;
    pub const MAP_PRIVATE: c_int = 0x02;
    pub const MAP_ANONYMOUS: c_int = 0x20;
    pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

    pub const SIGKILL: c_int = 9;
    pub const SIGCONT: c_int = 18;
    pub const SIGSTOP: c_int = 19;
    pub const WNOHANG: c_int = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: size_t,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: off_t,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
        pub fn fork() -> pid_t;
        pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
        pub fn kill(pid: pid_t, sig: c_int) -> c_int;
        pub fn getpid() -> pid_t;
        pub fn _exit(status: c_int) -> !;
    }

    /// `WIFEXITED(status)`: the child terminated normally via `_exit`.
    #[must_use]
    pub fn WIFEXITED(status: c_int) -> bool {
        status & 0x7f == 0
    }

    /// `WEXITSTATUS(status)`: the low 8 bits of the child's exit code.
    #[must_use]
    pub fn WEXITSTATUS(status: c_int) -> c_int {
        (status >> 8) & 0xff
    }

    /// `WIFSIGNALED(status)`: the child was terminated by a signal.
    #[must_use]
    pub fn WIFSIGNALED(status: c_int) -> bool {
        ((status & 0x7f) + 1) >> 1 > 0
    }

    /// `WTERMSIG(status)`: the signal that terminated the child.
    #[must_use]
    pub fn WTERMSIG(status: c_int) -> c_int {
        status & 0x7f
    }
}
