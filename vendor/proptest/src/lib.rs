//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the API subset the workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! `prop_assert!` / `prop_assert_eq!`, integer-range strategies, and
//! `collection::btree_set`. Cases are generated from a deterministic
//! per-case seed (override with the `PROPTEST_SEED` environment variable),
//! so failures are reproducible. No shrinking is performed: the failing
//! case's arguments are printed instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Execution of generated test cases.

    /// A failed property within a test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail<M: Into<String>>(message: M) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// A deterministic random source for one test case (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Drives the configured number of cases for one property.
    #[derive(Clone, Debug)]
    pub struct TestRunner {
        cases: u32,
        base_seed: u64,
    }

    impl TestRunner {
        /// Creates a runner from a configuration.
        pub fn new(config: crate::ProptestConfig) -> Self {
            let base_seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5EED_CAFE_F00D_D00Du64);
            TestRunner {
                cases: config.cases,
                base_seed,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The random source for one case index.
        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::new(self.base_seed ^ (u64::from(case).wrapping_mul(0xA24B_AED4_963E_E407)))
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample from an empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `BTreeSet`s of elements drawn from `element`, with
    /// sizes drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `BTreeSet`s with sizes in `size` and elements from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().sample(rng);
            let mut set = BTreeSet::new();
            // The element domain may be smaller than the target size; cap the
            // number of attempts so sampling always terminates.
            for _ in 0..target.saturating_mul(16).max(16) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }

    /// Strategy producing `Vec`s of elements drawn from `element`, with
    /// lengths drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s with lengths in `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let length = self.size.clone().sample(rng);
            (0..length).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; this stand-in never shrinks, so the
    /// value is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

pub mod prelude {
    //! The glob-importable API surface.

    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a `proptest!` property, failing the case (with
/// the arguments printed) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {left:?} != {right:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {left:?} != {right:?}", format!($($fmt)+)),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body across generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr; ) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let runner = $crate::test_runner::TestRunner::new($config);
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(error) = outcome {
                    panic!(
                        "property {} failed at case {case}: {error}\narguments: {:?}",
                        stringify!($name),
                        ($(&$arg,)*)
                    );
                }
            }
        }
        $crate::__proptest_items! { $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Generated integers respect their ranges.
        #[test]
        fn ranges_are_respected(
            small in 1usize..10,
            wide in 0u64..1_000_000,
            byte in 0u8..40,
        ) {
            prop_assert!((1..10).contains(&small));
            prop_assert!(wide < 1_000_000);
            prop_assert!(byte < 40, "byte {byte} out of range");
        }

        /// btree_set sizes land within the requested range when the domain
        /// is large enough.
        #[test]
        fn btree_sets_have_bounded_sizes(
            set in crate::collection::btree_set(0usize..1000, 1..10),
        ) {
            prop_assert!(!set.is_empty() && set.len() < 10);
            prop_assert_eq!(set.iter().copied().max().map(|m| m < 1000), Some(true));
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failed_properties_panic_with_arguments() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 1, ..ProptestConfig::default() })]

            fn always_fails(x in 0u8..2) {
                prop_assert!(x > 200);
            }
        }
        always_fails();
    }
}
