//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Backed by `std::sync` primitives, exposing `parking_lot`'s no-poison API
//! subset the workspace uses: [`Mutex::lock`], [`RwLock::read`] and
//! [`RwLock::write`]. Poisoned locks are recovered transparently (the inner
//! data is returned as-is), matching `parking_lot`'s semantics of never
//! poisoning.

#![forbid(unsafe_code)]

use std::fmt;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(r1.len() + r2.len(), 6);
        drop((r1, r2));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
