//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendor crate reimplements exactly the API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, fast, and of ample quality for randomized
//! algorithms and tests (it is the same generator family `rand`'s `SmallRng`
//! uses). It is **not** cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's full output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random `u64` into `[0, span)` with the widening-multiply technique.
fn bounded(rng_word: u64, span: u64) -> u64 {
    ((u128::from(rng_word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = bounded(rng.next_u64(), span);
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                let offset = bounded(rng.next_u64(), span as u64);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u8 = rng.gen_range(0..2u8);
            assert!(x < 2);
            let y = rng.gen_range(-50..50);
            assert!((-50..50).contains(&y));
            let z = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&z));
            let w: usize = rng.gen_range(0..17usize);
            assert!(w < 17);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut values: Vec<usize> = (0..32).collect();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            values, sorted,
            "a 32-element shuffle leaving order intact is astronomically unlikely"
        );
    }
}
