//! Umbrella crate for the *Optimal-Time Adaptive Strong Renaming* workspace.
//!
//! This crate re-exports the workspace's public crates under one roof so the
//! runnable examples and the cross-crate integration tests have a single
//! dependency. Library users should depend on the individual crates directly:
//!
//! * [`adaptive_renaming`] — the paper's algorithms (renaming, counters,
//!   fetch-and-increment).
//! * [`shmem`] — the shared-memory substrate and execution harness.
//! * [`tas`] — test-and-set objects.
//! * [`sortnet`] — sorting networks, including the §6.1 adaptive construction.
//! * [`cnet`] — counting networks: balancers, balancing networks and the
//!   quiescently-consistent network counter.
//! * [`maxreg`] — max registers.
//!
//! See `README.md` for a guided tour and `EXPERIMENTS.md` for the
//! reproduction of the paper's quantitative claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adaptive_renaming;
pub use cnet;
pub use maxreg;
pub use shmem;
pub use sortnet;
pub use tas;

/// A convenience prelude for examples and tests: the items needed to run the
/// paper's objects under the adversarial executor, plus the builder and
/// long-lived lease surface.
pub mod prelude {
    pub use adaptive_renaming::adaptive::AdaptiveRenaming;
    pub use adaptive_renaming::batched::BatchedRecycler;
    pub use adaptive_renaming::bit_batching::BitBatchingRenaming;
    pub use adaptive_renaming::builder::{Algorithm, ComparatorKind, EngineKind, RenamingBuilder};
    pub use adaptive_renaming::comparator_slab::ComparatorSlab;
    pub use adaptive_renaming::counter::{
        CasCounter, Counter, CounterBackend, CounterBuilder, MonotoneCounter,
    };
    pub use adaptive_renaming::fetch_increment::BoundedFetchIncrement;
    pub use adaptive_renaming::free_list::{FreeList, FreeListKind};
    pub use adaptive_renaming::lease::{
        assert_loose_lease_namespace, assert_tight_lease_namespace, LeaseRecord, LongLivedRenaming,
        NameLease,
    };
    pub use adaptive_renaming::linear_probe::LinearProbeRenaming;
    pub use adaptive_renaming::loose::LooseRenaming;
    pub use adaptive_renaming::ltas::BoundedTas;
    pub use adaptive_renaming::recycler::Recycler;
    pub use adaptive_renaming::renaming_network::{LockedRenamingNetwork, RenamingNetwork};
    pub use adaptive_renaming::sharded::ShardedRecycler;
    pub use adaptive_renaming::traits::{assert_tight_namespace, assert_unique_names, Renaming};
    pub use cnet::{
        AdaptiveNetworkCounter, Balancer, BalancerSlot, BalancingNetwork, BalancingTopology,
        CompiledBalancingNetwork, ContentionSensor, CountingFamily, NetworkCounter, Prism,
        PrismOutcome,
    };
    pub use shmem::adversary::{ArrivalSchedule, CrashPlan, ExecConfig, YieldPolicy};
    pub use shmem::executor::Executor;
    pub use shmem::process::{ProcessCtx, ProcessId};
    pub use sortnet::family::NetworkFamily;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        let _ = ExecConfig::new(0);
        let renaming = <dyn Renaming>::builder().build().unwrap();
        assert!(renaming.is_adaptive());
        let long_lived = RenamingBuilder::new()
            .network()
            .capacity(8)
            .max_concurrent(4)
            .build_long_lived()
            .unwrap();
        assert_eq!(long_lived.max_concurrent(), Some(4));
        assert!(assert_tight_namespace(&[1, 2]).is_ok());
        assert!(assert_tight_lease_namespace(&[]).is_ok());
        let counter = <dyn Counter>::builder()
            .backend(CounterBackend::Network)
            .build()
            .unwrap();
        let mut ctx = ProcessCtx::new(ProcessId::new(0), 0);
        counter.increment(&mut ctx);
        assert_eq!(counter.read(&mut ctx), 1);
        assert_eq!(NetworkCounter::default().width(), 8);
    }
}
